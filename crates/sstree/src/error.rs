//! Typed structural errors for the SS-tree verifier.
//!
//! [`SsTree::validate`](crate::SsTree::validate) walks every link the GPU
//! kernels will later follow and reports the *first* violated invariant as a
//! [`StructuralError`]. Each variant names the node (or point) at fault so a
//! corrupted persisted index or a buggy construction can be diagnosed without
//! re-running under a debugger.

use std::fmt;

/// The first structural invariant an [`SsTree`](crate::SsTree) violates.
///
/// The verifier is defensive: it bounds-checks every link *before* following
/// it and caps its own traversal, so it terminates with a typed error on any
/// byte-level corruption — it never panics or loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StructuralError {
    /// A per-node array's length disagrees with the node count.
    ArrayLength { array: &'static str, len: usize, nodes: usize },
    /// The root id is outside the node arena.
    RootOutOfRange { root: u32, nodes: usize },
    /// The root has a parent link.
    RootHasParent { root: u32 },
    /// A child id (or the end of a child range) points outside the arena.
    ChildOutOfRange { node: u32, target: u64, nodes: usize },
    /// An internal node claims zero children.
    NoChildren { node: u32 },
    /// A node holds more children/points than the tree degree allows.
    DegreeOverflow { node: u32, count: u32, degree: usize },
    /// A child's parent link does not point back at the node that owns it.
    ParentLinkBroken { child: u32, expected_parent: u32, actual_parent: u32 },
    /// A child's level is not exactly one below its parent's.
    LevelMismatch { child: u32, parent: u32 },
    /// `subtree_min_leaf > subtree_max_leaf` — an empty subtree leaf range.
    EmptySubtreeRange { node: u32 },
    /// A node's subtree leaf range disagrees with the union of its children's.
    SubtreeRangeWrong { node: u32 },
    /// A leaf carries the `NOT_A_LEAF` sentinel, or its id exceeds the count.
    LeafIdInvalid { node: u32, leaf_id: u32 },
    /// A leaf's subtree range is not exactly its own leaf id.
    LeafRangeNotSelf { node: u32 },
    /// `leaf_node_of[leaf_id]` does not point back at the leaf.
    LeafChainBroken { node: u32, leaf_id: u32 },
    /// Leaf ids do not run dense left-to-right in traversal order.
    LeafIdsNotSequential { node: u32, got: u32, expected: u32 },
    /// Fewer (or more) leaves were numbered than `leaf_node_of` holds.
    LeafCountMismatch { counted: usize, expected: usize },
    /// A leaf's point range escapes the point array.
    PointRangeOutOfRange { node: u32, target: u64, points: usize },
    /// A point position belongs to two leaves.
    DuplicatePoint { point: usize },
    /// A point position belongs to no leaf.
    OrphanPoint { point: usize },
    /// A point lies outside its leaf's bounding sphere.
    PointOutsideSphere { node: u32, point: usize },
    /// A child sphere is not contained in its parent's sphere.
    SphereNotContained { node: u32, child: u32 },
    /// A sphere has a NaN/infinite center coordinate or a negative or
    /// non-finite radius.
    NonFiniteGeometry { node: u32 },
    /// A rope (escape) link does not land on the correct next-subtree node.
    RopeBroken { node: u32 },
    /// Some arena nodes are unreachable from the root.
    UnreachableNodes { nodes: usize, visited: usize },
    /// The traversal visited more nodes than the arena holds — the links form
    /// a cycle.
    TraversalOverrun { nodes: usize },
}

impl fmt::Display for StructuralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use StructuralError::*;
        match *self {
            ArrayLength { array, len, nodes } => {
                write!(f, "array `{array}` has length {len} but the arena holds {nodes} nodes")
            }
            RootOutOfRange { root, nodes } => {
                write!(f, "root {root} is outside the {nodes}-node arena")
            }
            RootHasParent { root } => write!(f, "root {root} has a parent link"),
            ChildOutOfRange { node, target, nodes } => {
                write!(f, "node {node}: child range reaches {target} in a {nodes}-node arena")
            }
            NoChildren { node } => write!(f, "internal node {node} has no children"),
            DegreeOverflow { node, count, degree } => {
                write!(f, "node {node} holds {count} entries, degree is {degree}")
            }
            ParentLinkBroken { child, expected_parent, actual_parent } => write!(
                f,
                "child {child} points at parent {actual_parent}, expected {expected_parent}"
            ),
            LevelMismatch { child, parent } => {
                write!(f, "child {child} level is not one below parent {parent}")
            }
            EmptySubtreeRange { node } => write!(f, "node {node}: empty subtree leaf range"),
            SubtreeRangeWrong { node } => {
                write!(f, "node {node}: subtree leaf range disagrees with its children")
            }
            LeafIdInvalid { node, leaf_id } => {
                write!(f, "leaf {node} has invalid leaf id {leaf_id}")
            }
            LeafRangeNotSelf { node } => {
                write!(f, "leaf {node}: subtree range is not its own leaf id")
            }
            LeafChainBroken { node, leaf_id } => {
                write!(f, "leaf_node_of[{leaf_id}] does not point back at leaf {node}")
            }
            LeafIdsNotSequential { node, got, expected } => {
                write!(f, "leaf {node} has id {got}, expected {expected} (not left-to-right)")
            }
            LeafCountMismatch { counted, expected } => {
                write!(f, "numbered {counted} leaves, leaf_node_of holds {expected}")
            }
            PointRangeOutOfRange { node, target, points } => {
                write!(f, "leaf {node}: point range reaches {target} of {points} points")
            }
            DuplicatePoint { point } => write!(f, "point {point} appears in two leaves"),
            OrphanPoint { point } => write!(f, "point {point} is in no leaf"),
            PointOutsideSphere { node, point } => {
                write!(f, "leaf {node}: point {point} lies outside the bounding sphere")
            }
            SphereNotContained { node, child } => {
                write!(f, "node {node}: child {child}'s sphere pokes out of the parent sphere")
            }
            NonFiniteGeometry { node } => {
                write!(f, "node {node} has a non-finite center or radius")
            }
            RopeBroken { node } => {
                write!(f, "node {node}: rope link does not land on the next-subtree node")
            }
            UnreachableNodes { nodes, visited } => {
                write!(f, "arena holds {nodes} nodes but only {visited} are reachable from root")
            }
            TraversalOverrun { nodes } => {
                write!(f, "traversal exceeded the {nodes}-node arena: links form a cycle")
            }
        }
    }
}

impl std::error::Error for StructuralError {}
