//! SS-tree: the n-ary bounding-sphere index the paper traverses on the GPU.
//!
//! An SS-tree (White & Jain, ICDE 1996) is a balanced n-ary tree whose node
//! regions are bounding spheres. This crate provides:
//!
//! * [`SsTree`] — a flattened, GPU-layout-faithful arena: per-node sphere arrays
//!   (SoA), contiguous children, parent links, a dense left-to-right leaf
//!   numbering with `subtreeMinLeafId` / `subtreeMaxLeafId` ranges, and a
//!   leaf-level sibling chain. These are exactly the auxiliary structures
//!   Algorithm 1 (PSB) requires for stackless traversal.
//! * [`build`] — parallel bottom-up construction (paper §IV): leaf packing by
//!   Hilbert-curve order or by k-means clustering, 100 % leaf utilization, and
//!   hierarchical bounding spheres via the parallel Ritter algorithm.
//! * [`topdown`] — the classic top-down insert/split construction, kept as the
//!   comparison point for node utilization and sphere quality.
//! * [`search`] — exact CPU searches (recursive branch-and-bound and best-first)
//!   used as correctness oracles for the GPU kernels.

pub mod arena;
pub mod build;
pub mod error;
pub mod persist;
pub mod search;
pub mod topdown;
pub mod tree;

pub use arena::SphereArena;
pub use build::{build, BuildMethod};
pub use error::StructuralError;
pub use persist::{load as load_index, save as save_index, LoadError};
pub use search::{knn_best_first, knn_branch_and_bound, linear_knn, Neighbor};
pub use topdown::build_topdown;
pub use tree::SsTree;
