//! Parallel bottom-up SS-tree construction (paper §IV).
//!
//! Both construction methods reduce to the same pipeline:
//!
//! 1. compute a **point ordering** (Hilbert-curve order, or k-means cluster order
//!    with Hilbert-ordered clusters and members);
//! 2. chunk the ordered stream into **full leaves** — the paper explicitly
//!    enforces 100 % leaf utilization "even if we can significantly reduce the
//!    volume by storing some points in a sibling tree node";
//! 3. build internal levels bottom-up, enclosing child spheres with the parallel
//!    Ritter algorithm. For the k-means method the paper re-clusters each
//!    internal level with `k` reduced by 100×; that re-clustering *reorders* the
//!    level before it is chunked into parents, and leaf ids are assigned only
//!    after the full shape is known so the left-to-right numbering PSB depends on
//!    stays consistent.
//!
//! Everything is deterministic (seeded k-means, tie-broken sorts) and the heavy
//! phases (key computation, per-leaf Ritter spheres) run on the rayon pool.

use psb_geom::hilbert::hilbert_key;
use psb_geom::{
    kmeans, ritter_points, ritter_spheres, HilbertKey, KMeansParams, PointSet, Rect, RitterMode,
    Sphere,
};
use rayon::prelude::*;

use crate::tree::{SsTree, NOT_A_LEAF, NO_PARENT};

/// Bottom-up construction method.
#[derive(Clone, Debug)]
pub enum BuildMethod {
    /// Sort by Hilbert key and pack (paper §IV-A).
    Hilbert,
    /// k-means cluster order at the leaf level, re-clustered with `k/100` per
    /// internal level (paper §IV-B). `k_leaf = 0` selects the paper's default
    /// `sqrt(n/2)`.
    KMeans { k_leaf: usize, seed: u64 },
}

impl BuildMethod {
    /// The k-means method with the paper's default `k = sqrt(n/2)`.
    pub fn kmeans_default(seed: u64) -> Self {
        BuildMethod::KMeans { k_leaf: 0, seed }
    }
}

/// One under-construction level: per node, its sphere and its children
/// (indices into the *final order* of the level below; for leaves, point ids).
/// Shared with the top-down builder, which flattens its pointer tree into the
/// same representation before materializing.
pub(crate) struct Level {
    pub(crate) spheres: Vec<Sphere>,
    pub(crate) groups: Vec<Vec<u32>>,
}

/// Builds an SS-tree over `points` with the given node degree (= leaf capacity).
pub fn build(points: &PointSet, degree: usize, method: &BuildMethod) -> SsTree {
    assert!(degree >= 2, "degree must be at least 2");
    assert!(!points.is_empty(), "cannot build an index over zero points");
    let n = points.len();
    let bounds = Rect::of_point_set(points);

    // Hilbert keys are needed by both methods (ordering, or cluster ordering).
    let keys: Vec<HilbertKey> =
        (0..n).into_par_iter().map(|i| hilbert_key(points.point(i), &bounds)).collect();

    // Step 1: the point ordering.
    let order: Vec<u32> = match method {
        BuildMethod::Hilbert => {
            let mut idx: Vec<u32> = (0..n as u32).collect();
            idx.par_sort_unstable_by_key(|&i| (keys[i as usize], i));
            idx
        }
        BuildMethod::KMeans { k_leaf, seed } => {
            let k = if *k_leaf == 0 { psb_geom::kmeans::suggested_k(n) } else { *k_leaf };
            let all: Vec<u32> = (0..n as u32).collect();
            let result = kmeans(points, &all, &KMeansParams { k, max_iters: 16, seed: *seed });
            order_by_clusters(&result.assignment, &result.centroids, &keys, &bounds)
        }
    };

    // Step 2: full leaves from the ordered stream.
    let leaf_groups: Vec<Vec<u32>> = order.chunks(degree).map(|c| c.to_vec()).collect();
    let leaf_spheres: Vec<Sphere> =
        leaf_groups.par_iter().map(|g| ritter_points(points, g, RitterMode::Sequential)).collect();
    let mut levels: Vec<Level> = vec![Level { spheres: leaf_spheres, groups: leaf_groups }];

    // Step 3: internal levels.
    let mut k_level = match method {
        BuildMethod::Hilbert => 0usize,
        BuildMethod::KMeans { k_leaf, .. } => {
            let base = if *k_leaf == 0 { psb_geom::kmeans::suggested_k(n) } else { *k_leaf };
            base / 100
        }
    };
    let kmeans_seed = match method {
        BuildMethod::KMeans { seed, .. } => *seed,
        BuildMethod::Hilbert => 0,
    };
    loop {
        let m = levels.last().map_or(0, |l| l.spheres.len());
        if m <= 1 {
            break;
        }

        // Reorder the level below (k-means method only, while k is meaningful).
        if k_level >= 2 && m > degree {
            if let Some(below) = levels.last_mut() {
                let centers = PointSet::from_flat(
                    points.dims(),
                    below.spheres.iter().flat_map(|s| s.center.iter().copied()).collect(),
                );
                let all: Vec<u32> = (0..m as u32).collect();
                let result = kmeans(
                    &centers,
                    &all,
                    &KMeansParams { k: k_level.min(m), max_iters: 16, seed: kmeans_seed ^ 0x5eed },
                );
                let ckeys: Vec<HilbertKey> =
                    (0..m).map(|i| hilbert_key(centers.point(i), &bounds)).collect();
                let perm =
                    order_by_clusters(&result.assignment, &result.centroids, &ckeys, &bounds);
                apply_permutation(below, &perm);
            }
        }

        // Chunk into parents and enclose.
        let below_spheres = match levels.last() {
            Some(l) => &l.spheres,
            None => break, // unreachable: the loop guard saw a last level
        };
        let parent_groups: Vec<Vec<u32>> =
            (0..m as u32).collect::<Vec<u32>>().chunks(degree).map(|c| c.to_vec()).collect();
        let parent_spheres: Vec<Sphere> = parent_groups
            .par_iter()
            .map(|g| {
                let kids: Vec<Sphere> =
                    g.iter().map(|&c| below_spheres[c as usize].clone()).collect();
                ritter_spheres(&kids, RitterMode::Sequential)
            })
            .collect();
        levels.push(Level { spheres: parent_spheres, groups: parent_groups });
        k_level /= 100;
    }

    materialize(points, degree, levels)
}

/// Orders items by (Hilbert key of their cluster centroid, then Hilbert key of
/// the item itself, then index). This is the "cluster order" both k-means levels
/// use: clusters laid along the curve, members sorted along the curve inside.
fn order_by_clusters(
    assignment: &[u32],
    centroids: &PointSet,
    item_keys: &[HilbertKey],
    bounds: &Rect,
) -> Vec<u32> {
    let cluster_keys: Vec<HilbertKey> =
        (0..centroids.len()).map(|c| hilbert_key(centroids.point(c), bounds)).collect();
    let mut idx: Vec<u32> = (0..assignment.len() as u32).collect();
    idx.par_sort_unstable_by_key(|&i| {
        let c = assignment[i as usize] as usize;
        (cluster_keys[c], c as u32, item_keys[i as usize], i)
    });
    idx
}

/// Permutes a level in place: node `i` of the new order is old node `perm[i]`.
fn apply_permutation(level: &mut Level, perm: &[u32]) {
    level.spheres = perm.iter().map(|&p| level.spheres[p as usize].clone()).collect();
    level.groups = perm.iter().map(|&p| std::mem::take(&mut level.groups[p as usize])).collect();
}

/// Flattens the per-level plan into the arena representation.
pub(crate) fn materialize(points: &PointSet, degree: usize, levels: Vec<Level>) -> SsTree {
    let dims = points.dims();
    let num_levels = levels.len();
    let total_nodes: usize = levels.iter().map(|l| l.spheres.len()).sum();

    // Arena order: root level first, leaves last; nodes of a level keep their
    // final within-level order, which makes every parent's children contiguous.
    let mut base = vec![0u32; num_levels]; // arena offset of each level (top = 0)
    {
        let mut acc = 0u32;
        for (slot, level) in base.iter_mut().zip(levels.iter().rev()) {
            *slot = acc;
            acc += level.spheres.len() as u32;
        }
        // `base[i]` currently indexes reversed levels; base[0] = root level.
        debug_assert_eq!(acc as usize, total_nodes);
    }
    // Map: levels index (0 = leaves) -> arena base.
    let arena_base = |level_idx: usize| base[num_levels - 1 - level_idx];

    let mut centers = vec![0f32; total_nodes * dims];
    let mut radii = vec![0f32; total_nodes];
    let mut parent = vec![NO_PARENT; total_nodes];
    let mut level_arr = vec![0u8; total_nodes];
    let mut first_child = vec![0u32; total_nodes];
    let mut child_count = vec![0u32; total_nodes];
    let mut leaf_id = vec![NOT_A_LEAF; total_nodes];
    let mut subtree_min = vec![0u32; total_nodes];
    let mut subtree_max = vec![0u32; total_nodes];

    // Fill per level, top to bottom. Children ranges come from cumulative counts.
    for (li, level) in levels.iter().enumerate() {
        let b = arena_base(li);
        for (j, sphere) in level.spheres.iter().enumerate() {
            let node = (b + j as u32) as usize;
            centers[node * dims..(node + 1) * dims].copy_from_slice(&sphere.center);
            radii[node] = sphere.radius;
            level_arr[node] = li as u8;
        }
        if li > 0 {
            let child_base = arena_base(li - 1);
            let mut cursor = 0u32;
            for (j, group) in level.groups.iter().enumerate() {
                let node = b + j as u32;
                first_child[node as usize] = child_base + cursor;
                child_count[node as usize] = group.len() as u32;
                for offset in 0..group.len() as u32 {
                    parent[(child_base + cursor + offset) as usize] = node;
                }
                cursor += group.len() as u32;
            }
        }
    }

    // Leaves: reorder points into final leaf order, assign ids and point runs.
    let leaf_level = &levels[0];
    let num_leaves = leaf_level.groups.len();
    let leaf_base = arena_base(0);
    let mut point_order: Vec<u32> = Vec::with_capacity(points.len());
    let mut leaf_node_of = vec![0u32; num_leaves];
    for (l, group) in leaf_level.groups.iter().enumerate() {
        let node = leaf_base + l as u32;
        leaf_node_of[l] = node;
        leaf_id[node as usize] = l as u32;
        first_child[node as usize] = point_order.len() as u32;
        child_count[node as usize] = group.len() as u32;
        subtree_min[node as usize] = l as u32;
        subtree_max[node as usize] = l as u32;
        point_order.extend_from_slice(group);
    }

    // Subtree leaf ranges bottom-up.
    for (li, level) in levels.iter().enumerate().take(num_levels).skip(1) {
        let b = arena_base(li);
        for (j, _) in level.groups.iter().enumerate() {
            let node = (b + j as u32) as usize;
            let fc = first_child[node];
            let cc = child_count[node];
            // Defensive defaults for an (impossible) empty group: min > max,
            // which the post-build validation below rejects as an empty range.
            subtree_min[node] =
                (fc..fc + cc).map(|c| subtree_min[c as usize]).min().unwrap_or(u32::MAX);
            subtree_max[node] = (fc..fc + cc).map(|c| subtree_max[c as usize]).max().unwrap_or(0);
        }
    }

    let mut tree = SsTree {
        dims,
        degree,
        points: points.gather(&point_order),
        point_ids: point_order,
        centers,
        radii,
        parent,
        level: level_arr,
        first_child,
        child_count,
        leaf_id,
        subtree_min_leaf: subtree_min,
        subtree_max_leaf: subtree_max,
        leaf_node_of,
        root: 0,
        rope: Vec::new(),
        arena: None,
    };
    // Every construction path (bottom-up, top-down, dynamic rebuild) funnels
    // through here: run the structural verifier so a construction bug can
    // never hand an invalid arena to the query engines.
    if let Err(e) = tree.validate() {
        panic!("construction produced a structurally invalid tree: {e}");
    }
    // Only a verified tree gets the packed device arena.
    tree.rebuild_arena();
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_data::ClusteredSpec;

    fn dataset(n_clusters: usize, per: usize, dims: usize, sigma: f32) -> PointSet {
        ClusteredSpec { clusters: n_clusters, points_per_cluster: per, dims, sigma, seed: 99 }
            .generate()
    }

    #[test]
    fn hilbert_build_validates() {
        let ps = dataset(5, 300, 3, 100.0);
        let t = build(&ps, 16, &BuildMethod::Hilbert);
        t.validate().expect("hilbert tree invalid");
        assert_eq!(t.points.len(), 1500);
        assert_eq!(t.num_leaves(), 1500usize.div_ceil(16));
    }

    #[test]
    fn kmeans_build_validates() {
        let ps = dataset(5, 300, 3, 100.0);
        let t = build(&ps, 16, &BuildMethod::KMeans { k_leaf: 20, seed: 5 });
        t.validate().expect("kmeans tree invalid");
    }

    #[test]
    fn kmeans_default_k_validates() {
        let ps = dataset(3, 200, 2, 50.0);
        let t = build(&ps, 8, &BuildMethod::kmeans_default(1));
        t.validate().expect("kmeans default-k tree invalid");
    }

    #[test]
    fn full_leaf_utilization() {
        let ps = dataset(4, 256, 2, 10.0); // 1024 points, degree 16 -> 64 full leaves
        for method in [BuildMethod::Hilbert, BuildMethod::KMeans { k_leaf: 10, seed: 2 }] {
            let t = build(&ps, 16, &method);
            assert_eq!(t.leaf_utilization(), 1.0, "method {method:?}");
        }
    }

    #[test]
    fn partial_final_leaf_only() {
        let ps = dataset(1, 1000, 2, 10.0); // 1000 points, degree 128
        let t = build(&ps, 128, &BuildMethod::Hilbert);
        assert_eq!(t.num_leaves(), 8);
        let counts: Vec<u32> = t.leaf_node_of.iter().map(|&n| t.child_count[n as usize]).collect();
        assert!(counts[..7].iter().all(|&c| c == 128));
        assert_eq!(counts[7], 1000 - 7 * 128);
    }

    #[test]
    fn single_leaf_tree() {
        let ps = dataset(1, 50, 2, 5.0);
        let t = build(&ps, 128, &BuildMethod::Hilbert);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.height(), 1);
        assert!(t.is_leaf(t.root));
        t.validate().expect("single leaf tree invalid");
    }

    #[test]
    fn deterministic_construction() {
        let ps = dataset(3, 400, 4, 80.0);
        let m = BuildMethod::KMeans { k_leaf: 12, seed: 77 };
        let a = build(&ps, 16, &m);
        let b = build(&ps, 16, &m);
        assert_eq!(a.point_ids, b.point_ids);
        assert_eq!(a.radii, b.radii);
        assert_eq!(a.centers, b.centers);
    }

    #[test]
    fn hilbert_leaves_are_spatially_tight() {
        // On strongly clustered data, Hilbert-packed leaf radii must be far
        // smaller than the space: locality is the entire point of the curve.
        // The exact average depends on how many packed leaves straddle two
        // clusters (a handful of ~cluster-gap-radius stragglers dominate the
        // mean), so the bound is loose — but broken locality would produce
        // radii on the order of the 65 536-wide space, orders of magnitude
        // beyond it.
        let ps = dataset(10, 200, 2, 20.0);
        let t = build(&ps, 16, &BuildMethod::Hilbert);
        let avg_leaf_radius: f32 =
            t.leaf_node_of.iter().map(|&n| t.radius(n)).sum::<f32>() / t.num_leaves() as f32;
        assert!(
            avg_leaf_radius < 1500.0,
            "avg leaf radius {avg_leaf_radius} suggests broken locality"
        );
    }

    #[test]
    fn kmeans_produces_tighter_or_similar_leaves_than_hilbert_high_dim() {
        // The paper's Fig. 3 motivation: in higher dimensions the Hilbert key
        // collapses (few bits per dimension) while k-means still finds the
        // clusters. Compare mean leaf radius at d = 16.
        let ps = dataset(8, 250, 16, 50.0);
        let th = build(&ps, 16, &BuildMethod::Hilbert);
        let tk = build(&ps, 16, &BuildMethod::KMeans { k_leaf: 8, seed: 3 });
        let mean_r = |t: &SsTree| {
            t.leaf_node_of.iter().map(|&n| t.radius(n)).sum::<f32>() / t.num_leaves() as f32
        };
        assert!(
            mean_r(&tk) <= mean_r(&th) * 1.05,
            "kmeans {} vs hilbert {}",
            mean_r(&tk),
            mean_r(&th)
        );
    }

    #[test]
    fn point_ids_are_a_permutation() {
        let ps = dataset(2, 500, 3, 30.0);
        let t = build(&ps, 32, &BuildMethod::KMeans { k_leaf: 6, seed: 8 });
        let mut ids = t.point_ids.clone();
        ids.sort_unstable();
        let expect: Vec<u32> = (0..1000).collect();
        assert_eq!(ids, expect);
        // Reordered points match originals.
        for (pos, &orig) in t.point_ids.iter().enumerate() {
            assert_eq!(t.points.point(pos), ps.point(orig as usize));
        }
    }

    #[test]
    fn degree_bounds_respected() {
        let ps = dataset(6, 333, 2, 60.0);
        for degree in [4usize, 16, 100] {
            let t = build(&ps, degree, &BuildMethod::Hilbert);
            t.validate().unwrap();
            for n in 0..t.num_nodes() as u32 {
                assert!(t.child_count[n as usize] as usize <= degree);
            }
        }
    }
}
