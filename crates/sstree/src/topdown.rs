//! Classic top-down SS-tree construction (White & Jain), kept as the comparison
//! point the paper's §IV argues against.
//!
//! Insertion descends into the child whose **centroid** is closest to the new
//! point; an overflowing node is split along its **highest-variance dimension**
//! (the original SS-tree split rule). The R*-style *forced reinsertion*
//! heuristic is applied once per insertion at the leaf level: the first time a
//! leaf overflows, the fraction of its points farthest from the centroid is
//! removed and reinserted from the root, which tightens spheres the same way the
//! SS-tree paper describes.
//!
//! Node centers follow the SS-tree convention: the **centroid of the subtree's
//! points** (maintained incrementally as an exact running sum), with the radius
//! computed at flatten time as a proper bound over children. Utilization of
//! top-down leaves lands well under 100 %, which is exactly the contrast with
//! bottom-up packing the paper draws.

use psb_geom::{dist, PointSet, Sphere};

use crate::build::{materialize, Level};
use crate::tree::SsTree;

/// Fraction of a leaf's points removed on first overflow for reinsertion.
const REINSERT_FRACTION: f64 = 0.3;

struct TdNode {
    level: u8,
    /// Running sum of all point coordinates in the subtree (exact in f64).
    centroid_sum: Vec<f64>,
    /// Points in the subtree.
    count: u64,
    /// Internal nodes: children. Leaves: empty.
    children: Vec<TdNode>,
    /// Leaves: point ids. Internal: empty.
    pts: Vec<u32>,
}

impl TdNode {
    fn new_leaf(dims: usize) -> Self {
        Self {
            level: 0,
            centroid_sum: vec![0.0; dims],
            count: 0,
            children: Vec::new(),
            pts: Vec::new(),
        }
    }

    fn centroid(&self) -> Vec<f32> {
        let inv = 1.0 / self.count.max(1) as f64;
        self.centroid_sum.iter().map(|&s| (s * inv) as f32).collect()
    }

    fn add_to_centroid(&mut self, p: &[f32]) {
        self.count += 1;
        for (s, &x) in self.centroid_sum.iter_mut().zip(p) {
            *s += x as f64;
        }
    }
}

enum InsertOutcome {
    Fit,
    /// The node split; the new right sibling is returned.
    Split(TdNode),
    /// Forced reinsertion: these points were evicted and must be re-inserted.
    Reinsert(Vec<u32>),
}

/// Builds an SS-tree by inserting every point in order through the classic
/// top-down algorithm, then flattening into the shared arena layout.
pub fn build_topdown(points: &PointSet, degree: usize) -> SsTree {
    assert!(degree >= 2, "degree must be at least 2");
    assert!(!points.is_empty(), "cannot build an index over zero points");
    let dims = points.dims();
    let mut root = TdNode::new_leaf(dims);

    for id in 0..points.len() as u32 {
        insert_from_root(&mut root, points, id, degree, dims);
    }

    // Flatten post-order into per-level plans and reuse the bottom-up
    // materializer.
    let height = root.level as usize + 1;
    let mut levels: Vec<Level> =
        (0..height).map(|_| Level { spheres: Vec::new(), groups: Vec::new() }).collect();
    flatten(&root, points, &mut levels);
    materialize(points, degree, levels)
}

fn insert_from_root(root: &mut TdNode, points: &PointSet, id: u32, degree: usize, dims: usize) {
    let mut allow_reinsert = true;
    let mut pending = vec![id];
    while let Some(pid) = pending.pop() {
        match insert(root, points, pid, degree, allow_reinsert) {
            InsertOutcome::Fit => {}
            InsertOutcome::Reinsert(evicted) => {
                allow_reinsert = false; // once per insertion, like R*
                pending.extend(evicted);
            }
            InsertOutcome::Split(sibling) => {
                // Root split: grow the tree by one level.
                let old_root = std::mem::replace(root, TdNode::new_leaf(dims));
                root.level = old_root.level + 1;
                root.count = old_root.count + sibling.count;
                for (s, (a, b)) in root
                    .centroid_sum
                    .iter_mut()
                    .zip(old_root.centroid_sum.iter().zip(&sibling.centroid_sum))
                {
                    *s = a + b;
                }
                root.pts.clear();
                root.children = vec![old_root, sibling];
            }
        }
    }
}

fn insert(
    node: &mut TdNode,
    points: &PointSet,
    id: u32,
    degree: usize,
    allow_reinsert: bool,
) -> InsertOutcome {
    node.add_to_centroid(points.point(id as usize));
    if node.level == 0 {
        node.pts.push(id);
        if node.pts.len() <= degree {
            return InsertOutcome::Fit;
        }
        if allow_reinsert {
            return evict_farthest(node, points);
        }
        return split_leaf(node, points, degree);
    }

    // Choose the child whose centroid is closest to the point.
    let p = points.point(id as usize);
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (i, c) in node.children.iter().enumerate() {
        let d = dist(p, &c.centroid());
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    match insert(&mut node.children[best], points, id, degree, allow_reinsert) {
        InsertOutcome::Fit => InsertOutcome::Fit,
        InsertOutcome::Reinsert(evicted) => {
            // The evicted points left the subtree: fix the running centroid.
            for &e in &evicted {
                let ep = points.point(e as usize);
                node.count -= 1;
                for (s, &x) in node.centroid_sum.iter_mut().zip(ep) {
                    *s -= x as f64;
                }
            }
            InsertOutcome::Reinsert(evicted)
        }
        InsertOutcome::Split(sibling) => {
            node.children.push(sibling);
            if node.children.len() <= degree {
                return InsertOutcome::Fit;
            }
            split_internal(node, degree)
        }
    }
}

/// Forced reinsertion: pull the `REINSERT_FRACTION` of points farthest from the
/// leaf centroid out of the node.
fn evict_farthest(leaf: &mut TdNode, points: &PointSet) -> InsertOutcome {
    let centroid = leaf.centroid();
    let mut by_dist: Vec<u32> = leaf.pts.clone();
    by_dist.sort_by(|&a, &b| {
        let da = dist(points.point(a as usize), &centroid);
        let db = dist(points.point(b as usize), &centroid);
        da.total_cmp(&db).then(a.cmp(&b))
    });
    let evict_count = ((leaf.pts.len() as f64 * REINSERT_FRACTION).ceil() as usize).max(1);
    let evicted: Vec<u32> = by_dist[by_dist.len() - evict_count..].to_vec();
    leaf.pts.retain(|p| !evicted.contains(p));
    for &e in &evicted {
        let ep = points.point(e as usize);
        leaf.count -= 1;
        for (s, &x) in leaf.centroid_sum.iter_mut().zip(ep) {
            *s -= x as f64;
        }
    }
    InsertOutcome::Reinsert(evicted)
}

/// Variance of coordinates along each dimension; returns the argmax dimension.
fn max_variance_dim<'a>(coords: impl Iterator<Item = &'a [f32]> + Clone, dims: usize) -> usize {
    let mut best_dim = 0;
    let mut best_var = f64::NEG_INFINITY;
    let n = coords.clone().count().max(1) as f64;
    for d in 0..dims {
        let mean: f64 = coords.clone().map(|c| c[d] as f64).sum::<f64>() / n;
        let var: f64 = coords.clone().map(|c| (c[d] as f64 - mean).powi(2)).sum::<f64>() / n;
        if var > best_var {
            best_var = var;
            best_dim = d;
        }
    }
    best_dim
}

fn split_leaf(leaf: &mut TdNode, points: &PointSet, _degree: usize) -> InsertOutcome {
    let dims = points.dims();
    let dim = max_variance_dim(leaf.pts.iter().map(|&p| points.point(p as usize)), dims);
    leaf.pts.sort_by(|&a, &b| {
        points.point(a as usize)[dim].total_cmp(&points.point(b as usize)[dim]).then(a.cmp(&b))
    });
    let half = leaf.pts.len() / 2;
    let right_pts = leaf.pts.split_off(half);

    let mut right = TdNode::new_leaf(dims);
    for &p in &right_pts {
        right.add_to_centroid(points.point(p as usize));
    }
    right.pts = right_pts;

    // Recompute this (left) node's running sum from scratch.
    leaf.count = 0;
    leaf.centroid_sum.iter_mut().for_each(|s| *s = 0.0);
    let left_pts = std::mem::take(&mut leaf.pts);
    for &p in &left_pts {
        leaf.add_to_centroid(points.point(p as usize));
    }
    leaf.pts = left_pts;

    InsertOutcome::Split(right)
}

fn split_internal(node: &mut TdNode, _degree: usize) -> InsertOutcome {
    let dims = node.centroid_sum.len();
    let centroids: Vec<Vec<f32>> = node.children.iter().map(|c| c.centroid()).collect();
    let dim = max_variance_dim(centroids.iter().map(|c| c.as_slice()), dims);

    let mut order: Vec<usize> = (0..node.children.len()).collect();
    order.sort_by(|&a, &b| centroids[a][dim].total_cmp(&centroids[b][dim]).then(a.cmp(&b)));
    let half = order.len() / 2;
    let right_set: Vec<usize> = order[half..].to_vec();

    let mut right_children = Vec::with_capacity(order.len() - half);
    // Drain right children in descending index order to keep indices stable.
    let mut right_sorted = right_set.clone();
    right_sorted.sort_unstable_by(|a, b| b.cmp(a));
    for idx in right_sorted {
        right_children.push(node.children.remove(idx));
    }

    let mut right = TdNode::new_leaf(dims);
    right.level = node.level;
    for c in &right_children {
        right.count += c.count;
        for (s, &x) in right.centroid_sum.iter_mut().zip(&c.centroid_sum) {
            *s += x;
        }
    }
    right.children = right_children;

    node.count = 0;
    node.centroid_sum.iter_mut().for_each(|s| *s = 0.0);
    for c in &node.children {
        node.count += c.count;
        for (s, &x) in node.centroid_sum.iter_mut().zip(&c.centroid_sum) {
            *s += x;
        }
    }

    InsertOutcome::Split(right)
}

/// Post-order flatten: children are appended to their level before the parent
/// records its group, so every parent's children end up contiguous.
/// Returns (level, index within level) and the node's sphere.
fn flatten(node: &TdNode, points: &PointSet, levels: &mut [Level]) -> (usize, u32, Sphere) {
    let center = node.centroid();
    if node.level == 0 {
        let radius =
            node.pts.iter().map(|&p| dist(points.point(p as usize), &center)).fold(0f32, f32::max);
        let sphere = Sphere::new(center, radius * (1.0 + 1e-6));
        let lvl = &mut levels[0];
        let idx = lvl.spheres.len() as u32;
        lvl.spheres.push(sphere.clone());
        lvl.groups.push(node.pts.clone());
        return (0, idx, sphere);
    }

    let mut group = Vec::with_capacity(node.children.len());
    let mut radius = 0f32;
    for child in &node.children {
        let (clevel, cidx, csphere) = flatten(child, points, levels);
        debug_assert_eq!(clevel, node.level as usize - 1);
        group.push(cidx);
        radius = radius.max(dist(&csphere.center, &center) + csphere.radius);
    }
    let sphere = Sphere::new(center, radius * (1.0 + 1e-6));
    let lvl = &mut levels[node.level as usize];
    let idx = lvl.spheres.len() as u32;
    lvl.spheres.push(sphere.clone());
    lvl.groups.push(group);
    (node.level as usize, idx, sphere)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{knn_branch_and_bound, linear_knn};
    use psb_data::{sample_queries, ClusteredSpec};

    fn dataset(n: usize, dims: usize) -> PointSet {
        ClusteredSpec { clusters: 5, points_per_cluster: n / 5, dims, sigma: 90.0, seed: 21 }
            .generate()
    }

    #[test]
    fn builds_a_valid_tree() {
        let ps = dataset(1000, 3);
        let t = build_topdown(&ps, 16);
        t.validate().expect("top-down tree invalid");
        assert_eq!(t.points.len(), 1000);
    }

    #[test]
    fn small_input_stays_single_leaf() {
        let ps = dataset(10, 2);
        let t = build_topdown(&ps, 16);
        assert_eq!(t.num_nodes(), 1);
        t.validate().unwrap();
    }

    #[test]
    fn search_is_exact_over_topdown_tree() {
        let ps = dataset(1500, 4);
        let t = build_topdown(&ps, 16);
        let queries = sample_queries(&ps, 15, 0.01, 6);
        for q in queries.iter() {
            let got = knn_branch_and_bound(&t, q, 10);
            let want = linear_knn(&ps, q, 10);
            for (g, w) in got.iter().zip(&want) {
                let scale = w.dist.max(1.0);
                assert!((g.dist - w.dist).abs() <= scale * 1e-4);
            }
        }
    }

    #[test]
    fn utilization_is_below_bottom_up() {
        let ps = dataset(2000, 3);
        let td = build_topdown(&ps, 16);
        let bu = crate::build::build(&ps, 16, &crate::build::BuildMethod::Hilbert);
        assert!(
            td.leaf_utilization() < bu.leaf_utilization(),
            "top-down {} >= bottom-up {}",
            td.leaf_utilization(),
            bu.leaf_utilization()
        );
        // Sanity: splits should still land near 50% fill on average.
        assert!(td.leaf_utilization() > 0.3, "{}", td.leaf_utilization());
    }

    #[test]
    fn deterministic() {
        let ps = dataset(800, 2);
        let a = build_topdown(&ps, 8);
        let b = build_topdown(&ps, 8);
        assert_eq!(a.point_ids, b.point_ids);
        assert_eq!(a.radii, b.radii);
    }
}
