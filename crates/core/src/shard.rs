//! Disjoint sharding of a dataset for the multi-device serving layer.
//!
//! The serving crate (`psb-serve`) splits a `PointSet` into S disjoint shards,
//! builds one index plus one simulated device per shard, and prunes whole
//! shards with the same MINDIST machinery the kernels apply inside a tree: a
//! shard's bounding sphere (Ritter, like every SS-tree node) is just another
//! child sphere, one level above the root.
//!
//! Both split policies reuse the bottom-up builder's primitives: the
//! Hilbert-range split is the Hilbert leaf-packing order cut into S contiguous
//! ranges, and the k-means split is the paper's §IV-B clustering with `k = S`.

use psb_geom::{
    hilbert_key, kmeans, ritter_points, KMeansParams, PointSet, Rect, RitterMode, Sphere,
};

/// How [`partition`] splits the dataset into shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Sort positions by Hilbert key and cut the sequence into S contiguous,
    /// near-equal ranges. Spatially coherent and perfectly balanced.
    HilbertRange,
    /// Lloyd's k-means with `k = S` (reusing [`psb_geom::kmeans`]). Tighter
    /// shard spheres on clustered data, at the cost of balance.
    KMeans {
        /// Seed for the centroid sample.
        seed: u64,
    },
}

/// A disjoint, covering assignment of dataset positions to shards.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Per shard: the global dataset positions it owns. Every position in
    /// `0..points.len()` appears in exactly one shard; no shard is empty.
    pub assignments: Vec<Vec<u32>>,
}

impl ShardPlan {
    /// Number of shards in the plan.
    pub fn shards(&self) -> usize {
        self.assignments.len()
    }

    /// Gathered per-shard point sets: shard `s`'s local position `i` holds the
    /// exact coordinates of global position `assignments[s][i]` (a bitwise
    /// copy, so per-shard distance computations match the unsharded ones).
    pub fn shard_points(&self, points: &PointSet) -> Vec<PointSet> {
        self.assignments.iter().map(|idx| points.gather(idx)).collect()
    }
}

/// Splits `points` into `shards` disjoint, non-empty shards.
///
/// Deterministic for a given `(points, shards, policy)`. Requires
/// `1 <= shards <= points.len()`.
pub fn partition(points: &PointSet, shards: usize, policy: &ShardPolicy) -> ShardPlan {
    assert!(shards >= 1, "at least one shard");
    assert!(shards <= points.len(), "more shards ({shards}) than points ({})", points.len());
    let assignments = match policy {
        ShardPolicy::HilbertRange => hilbert_ranges(points, shards),
        ShardPolicy::KMeans { seed } => kmeans_split(points, shards, *seed),
    };
    debug_assert_eq!(assignments.iter().map(Vec::len).sum::<usize>(), points.len());
    debug_assert!(assignments.iter().all(|a| !a.is_empty()));
    ShardPlan { assignments }
}

/// The shard's bounding sphere: the Ritter sphere of its points — the same
/// construction (and the same bit-identical parallel mode) as SS-tree nodes.
pub fn shard_sphere(points: &PointSet, assignment: &[u32], mode: RitterMode) -> Sphere {
    ritter_points(points, assignment, mode)
}

/// Hilbert sort, then S contiguous near-equal cuts (first `n % S` shards get
/// the extra point).
fn hilbert_ranges(points: &PointSet, shards: usize) -> Vec<Vec<u32>> {
    let bounds = Rect::of_point_set(points);
    let mut keyed: Vec<(psb_geom::HilbertKey, u32)> =
        (0..points.len()).map(|i| (hilbert_key(points.point(i), &bounds), i as u32)).collect();
    keyed.sort_unstable();
    let n = points.len();
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut cursor = 0usize;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        out.push(keyed[cursor..cursor + len].iter().map(|&(_, i)| i).collect());
        cursor += len;
    }
    out
}

/// k-means with `k = S`; clusters keep ascending global position order. The
/// clustering reseeds empty clusters, but as a belt-and-braces guarantee any
/// shard that still ends up empty steals one point from the largest shard.
fn kmeans_split(points: &PointSet, shards: usize, seed: u64) -> Vec<Vec<u32>> {
    let idx: Vec<u32> = (0..points.len() as u32).collect();
    let params = KMeansParams { k: shards, max_iters: 16, seed };
    let result = kmeans(points, &idx, &params);
    let mut out = vec![Vec::new(); shards];
    for (pos, &cluster) in result.assignment.iter().enumerate() {
        out[cluster as usize].push(pos as u32);
    }
    // Rebalance any empties deterministically: take the last position owned by
    // the currently largest shard (smallest shard index on ties).
    for s in 0..shards {
        while out[s].is_empty() {
            let donor = (0..shards)
                .filter(|&d| out[d].len() > 1)
                .max_by_key(|&d| (out[d].len(), usize::MAX - d))
                .unwrap_or(s);
            if donor == s {
                break;
            }
            if let Some(moved) = out[donor].pop() {
                out[s].push(moved);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_data::{ClusteredSpec, UniformSpec};

    fn check_plan(plan: &ShardPlan, n: usize, shards: usize) {
        assert_eq!(plan.shards(), shards);
        let mut seen = vec![false; n];
        for a in &plan.assignments {
            assert!(!a.is_empty(), "empty shard");
            for &i in a {
                assert!(!seen[i as usize], "position {i} assigned twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "not a covering assignment");
    }

    #[test]
    fn hilbert_ranges_are_disjoint_covering_and_balanced() {
        let ps = UniformSpec { len: 1003, dims: 5, seed: 9 }.generate();
        for shards in [1, 2, 4, 8] {
            let plan = partition(&ps, shards, &ShardPolicy::HilbertRange);
            check_plan(&plan, ps.len(), shards);
            let lens: Vec<usize> = plan.assignments.iter().map(Vec::len).collect();
            let (lo, hi) = (lens.iter().min().copied(), lens.iter().max().copied());
            assert!(hi.unwrap() - lo.unwrap() <= 1, "unbalanced hilbert cut: {lens:?}");
        }
    }

    #[test]
    fn kmeans_split_is_disjoint_and_covering() {
        let ps =
            ClusteredSpec { clusters: 4, points_per_cluster: 200, dims: 4, sigma: 50.0, seed: 3 }
                .generate();
        for shards in [2, 4, 8] {
            let plan = partition(&ps, shards, &ShardPolicy::KMeans { seed: 17 });
            check_plan(&plan, ps.len(), shards);
        }
    }

    #[test]
    fn shard_spheres_contain_their_points() {
        let ps = UniformSpec { len: 400, dims: 3, seed: 10 }.generate();
        let plan = partition(&ps, 4, &ShardPolicy::HilbertRange);
        for a in &plan.assignments {
            let sphere = shard_sphere(&ps, a, RitterMode::Parallel);
            for &i in a {
                assert!(
                    sphere.contains_point(ps.point(i as usize), 1e-4),
                    "shard sphere misses its own point"
                );
            }
        }
    }

    #[test]
    fn gathered_shard_points_are_bitwise_copies() {
        let ps = UniformSpec { len: 128, dims: 6, seed: 11 }.generate();
        let plan = partition(&ps, 4, &ShardPolicy::KMeans { seed: 5 });
        for (s, local) in plan.shard_points(&ps).into_iter().enumerate() {
            for (li, &gi) in plan.assignments[s].iter().enumerate() {
                let a = local.point(li);
                let b = ps.point(gi as usize);
                assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
            }
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let ps = UniformSpec { len: 500, dims: 4, seed: 12 }.generate();
        for policy in [ShardPolicy::HilbertRange, ShardPolicy::KMeans { seed: 1 }] {
            let a = partition(&ps, 4, &policy);
            let b = partition(&ps, 4, &policy);
            assert_eq!(a.assignments, b.assignments);
        }
    }
}
