//! The index abstraction the GPU kernels traverse.
//!
//! The paper's title promise is *parallel tree traversal for n-ary
//! multi-dimensional trees* — the traversal (PSB, branch-and-bound, restart,
//! range) is independent of the node *shape*. [`GpuIndex`] captures exactly
//! what a traversal needs: the flattened structure (contiguous children, dense
//! left-to-right leaf ids, parent links, subtree leaf ranges) plus a bounding-
//! volume evaluation with its instruction cost.
//!
//! Two implementations exist: the SS-tree (bounding spheres — one distance
//! plus a radius add/subtract yields MINDIST *and* MAXDIST) and the packed
//! R-tree in `psb-rtree` (bounding rectangles — per-facet work, and a separate
//! farthest-corner pass for MAXDIST). Running the identical kernel over both
//! turns the paper's §II-C computational-cost argument into a measurement.

use psb_sstree::SsTree;

/// A flattened n-ary spatial index traversable by the data-parallel kernels.
///
/// Structural contract (checked by each implementation's `validate`):
/// children of a node are contiguous node ids; leaves are numbered densely
/// left-to-right and own contiguous runs of the reordered point array; every
/// node knows the max leaf id under it; `leaf_node_of(l + 1)` is the right
/// sibling of leaf `l`.
pub trait GpuIndex: Sync {
    /// Dimensionality of the indexed space.
    fn dims(&self) -> usize;
    /// Maximum children per node (= leaf capacity).
    fn degree(&self) -> usize;
    /// Root node id.
    fn root(&self) -> u32;
    /// Whether `n` is a leaf.
    fn is_leaf(&self, n: u32) -> bool;
    /// Children of internal node `n` (contiguous).
    fn children(&self, n: u32) -> std::ops::Range<u32>;
    /// Parent of `n` (undefined for the root).
    fn parent(&self, n: u32) -> u32;
    /// Point positions of leaf `n`.
    fn leaf_points(&self, n: u32) -> std::ops::Range<usize>;
    /// Coordinates at point position `pos`.
    fn point(&self, pos: usize) -> &[f32];
    /// Original dataset id at point position `pos`.
    fn point_id(&self, pos: usize) -> u32;
    /// Dense left-to-right leaf number of leaf `n`.
    fn leaf_id(&self, n: u32) -> u32;
    /// Node id of leaf number `l`.
    fn leaf_node_of(&self, l: u32) -> u32;
    /// Number of leaves.
    fn num_leaves(&self) -> usize;
    /// Total number of nodes (exclusive bound on valid node ids). The
    /// hardened kernels bounds-check every followed link against this and
    /// derive their traversal step budget from it.
    fn num_nodes(&self) -> usize;
    /// Total number of indexed point positions (exclusive bound on valid
    /// positions). Also the domain of the exact brute-force fallback scan.
    fn num_points(&self) -> usize;
    /// Largest leaf id under `n`'s subtree.
    fn subtree_max_leaf(&self, n: u32) -> u32;
    /// Bytes fetched for internal node `n` (its child bounding volumes, SoA).
    fn internal_node_bytes(&self, n: u32) -> u64;
    /// Bytes fetched for leaf node `n` (its points, SoA).
    fn leaf_node_bytes(&self, n: u32) -> u64;
    /// Bytes per child entry (for the AoS strided-layout ablation).
    fn child_entry_bytes(&self) -> u64;
    /// Bytes per point entry (for the AoS strided-layout ablation).
    fn point_entry_bytes(&self) -> u64;

    /// MINDIST (and MAXDIST when `with_max`) from `q` to child `c`'s bounding
    /// volume. When `with_max` is false the second component is unspecified.
    fn child_min_max(&self, c: u32, q: &[f32], with_max: bool) -> (f32, f32);

    /// Instruction cost of one `child_min_max` evaluation under the cost
    /// model. This is where sphere and rectangle indexes differ (§II-C).
    fn child_eval_cost(&self, with_max: bool) -> u64;

    /// Distance from `q` to child `c`'s representative point (sphere center /
    /// rectangle center). Used as the tie-break when several overlapping
    /// volumes report `MINDIST = 0` during the initial greedy descent.
    fn child_anchor_dist(&self, c: u32, q: &[f32]) -> f32;
}

impl GpuIndex for SsTree {
    fn dims(&self) -> usize {
        self.dims
    }
    fn degree(&self) -> usize {
        self.degree
    }
    fn root(&self) -> u32 {
        self.root
    }
    fn is_leaf(&self, n: u32) -> bool {
        SsTree::is_leaf(self, n)
    }
    fn children(&self, n: u32) -> std::ops::Range<u32> {
        SsTree::children(self, n)
    }
    fn parent(&self, n: u32) -> u32 {
        self.parent[n as usize]
    }
    fn leaf_points(&self, n: u32) -> std::ops::Range<usize> {
        SsTree::leaf_points(self, n)
    }
    fn point(&self, pos: usize) -> &[f32] {
        self.points.point(pos)
    }
    fn point_id(&self, pos: usize) -> u32 {
        self.point_ids[pos]
    }
    fn leaf_id(&self, n: u32) -> u32 {
        self.leaf_id[n as usize]
    }
    fn leaf_node_of(&self, l: u32) -> u32 {
        self.leaf_node_of[l as usize]
    }
    fn num_leaves(&self) -> usize {
        SsTree::num_leaves(self)
    }
    fn num_nodes(&self) -> usize {
        SsTree::num_nodes(self)
    }
    fn num_points(&self) -> usize {
        self.points.len()
    }
    fn subtree_max_leaf(&self, n: u32) -> u32 {
        self.subtree_max_leaf[n as usize]
    }
    fn internal_node_bytes(&self, n: u32) -> u64 {
        SsTree::internal_node_bytes(self, n)
    }
    fn leaf_node_bytes(&self, n: u32) -> u64 {
        SsTree::leaf_node_bytes(self, n)
    }
    fn child_entry_bytes(&self) -> u64 {
        self.dims as u64 * 4 + 4 + 12
    }
    fn point_entry_bytes(&self) -> u64 {
        self.dims as u64 * 4 + 4
    }

    fn child_min_max(&self, c: u32, q: &[f32], _with_max: bool) -> (f32, f32) {
        // One center distance yields both bounds — the sphere advantage.
        let center_d = psb_geom::dist(q, self.center(c));
        let r = self.radius(c);
        ((center_d - r).max(0.0), center_d + r)
    }

    fn child_eval_cost(&self, _with_max: bool) -> u64 {
        // Distance + radius add/subtract; MAXDIST is free (same distance).
        crate::dist_cost(self.dims) + 2
    }

    fn child_anchor_dist(&self, c: u32, q: &[f32]) -> f32 {
        psb_geom::dist(q, self.center(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_data::ClusteredSpec;
    use psb_sstree::{build, BuildMethod};

    #[test]
    fn sstree_implements_the_contract() {
        let ps =
            ClusteredSpec { clusters: 4, points_per_cluster: 200, dims: 3, sigma: 50.0, seed: 71 }
                .generate();
        let tree = build(&ps, 16, &BuildMethod::Hilbert);
        let t: &dyn Fn(&SsTree) = &|tree| {
            assert_eq!(GpuIndex::dims(tree), 3);
            assert_eq!(GpuIndex::degree(tree), 16);
            let root = GpuIndex::root(tree);
            assert!(!GpuIndex::is_leaf(tree, root));
            let kids = GpuIndex::children(tree, root);
            assert!(!kids.is_empty());
            for c in kids {
                assert_eq!(GpuIndex::parent(tree, c), root);
            }
            // Leaf chain is dense and consistent.
            for l in 0..GpuIndex::num_leaves(tree) as u32 {
                let n = GpuIndex::leaf_node_of(tree, l);
                assert_eq!(GpuIndex::leaf_id(tree, n), l);
                assert_eq!(GpuIndex::subtree_max_leaf(tree, n), l);
            }
        };
        t(&tree);
    }

    #[test]
    fn sphere_min_max_from_one_distance() {
        let ps =
            ClusteredSpec { clusters: 2, points_per_cluster: 100, dims: 2, sigma: 20.0, seed: 72 }
                .generate();
        let tree = build(&ps, 8, &BuildMethod::Hilbert);
        let c = GpuIndex::children(&tree, tree.root).start;
        let q = vec![0.0f32, 0.0];
        let (lo, hi) = GpuIndex::child_min_max(&tree, c, &q, true);
        assert!(lo <= hi);
        assert_eq!(lo, tree.sphere(c).min_dist(&q));
        assert_eq!(hi, tree.sphere(c).max_dist(&q));
    }

    #[test]
    fn maxdist_costs_nothing_extra_for_spheres() {
        let ps =
            ClusteredSpec { clusters: 2, points_per_cluster: 50, dims: 8, sigma: 20.0, seed: 73 }
                .generate();
        let tree = build(&ps, 8, &BuildMethod::Hilbert);
        assert_eq!(GpuIndex::child_eval_cost(&tree, false), GpuIndex::child_eval_cost(&tree, true));
    }
}
