//! The index abstraction the GPU kernels traverse.
//!
//! The paper's title promise is *parallel tree traversal for n-ary
//! multi-dimensional trees* — the traversal (PSB, branch-and-bound, restart,
//! range) is independent of the node *shape*. [`GpuIndex`] captures exactly
//! what a traversal needs: the flattened structure (contiguous children, dense
//! left-to-right leaf ids, parent links, subtree leaf ranges) plus a bounding-
//! volume evaluation with its instruction cost.
//!
//! Two implementations exist: the SS-tree (bounding spheres — one distance
//! plus a radius add/subtract yields MINDIST *and* MAXDIST) and the packed
//! R-tree in `psb-rtree` (bounding rectangles — per-facet work, and a separate
//! farthest-corner pass for MAXDIST). Running the identical kernel over both
//! turns the paper's §II-C computational-cost argument into a measurement.

use psb_geom::DistKernel;
use psb_sstree::SsTree;

/// Sentinel rope link: "no next subtree" — returned by [`GpuIndex::rope`] for
/// the root and every node on the rightmost root-to-leaf spine. Matches the
/// tree crates' own `NO_ROPE` constants bit-for-bit.
pub const NO_ROPE: u32 = u32::MAX;

/// Reusable output buffers for a per-node child sweep. Pooled in the engine's
/// per-thread [`Scratch`](crate::kernels::Scratch) so the batch loop performs
/// no per-node allocation.
#[derive(Clone, Debug, Default)]
pub struct SweepScratch {
    /// MINDIST per child, in child order.
    pub min_d: Vec<f32>,
    /// MAXDIST per child (filled only when the sweep ran `with_max`).
    pub max_d: Vec<f32>,
    /// Anchor (representative-point) distance per child (filled only when the
    /// sweep ran `with_anchor`).
    pub anchor_d: Vec<f32>,
    /// Staging row for the batched one-query-vs-many-rows distance kernels:
    /// sweeps write raw row distances here before deriving their outputs, so
    /// no sweep allocates. Transient — valid only within one sweep call.
    pub tmp: Vec<f32>,
}

impl SweepScratch {
    /// Empty all buffers, keeping their capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.min_d.clear();
        self.max_d.clear();
        self.anchor_d.clear();
        self.tmp.clear();
    }
}

/// The legacy gather path for [`GpuIndex::child_sweep`]: per-child scattered
/// loads through the node-major accessors. Default implementation and the
/// fallback when a packed arena is stale or absent.
pub fn gather_child_sweep<T: GpuIndex + ?Sized>(
    tree: &T,
    n: u32,
    q: &[f32],
    with_max: bool,
    with_anchor: bool,
    out: &mut SweepScratch,
) {
    for c in tree.children(n) {
        let (lo, hi) = tree.child_min_max(c, q, with_max);
        out.min_d.push(lo);
        if with_max {
            out.max_d.push(hi);
        }
    }
    if with_anchor {
        for c in tree.children(n) {
            out.anchor_d.push(tree.child_anchor_dist(c, q));
        }
    }
}

/// The legacy gather path for [`GpuIndex::leaf_sweep`]: per-point scattered
/// loads through the point accessors.
pub fn gather_leaf_sweep<T: GpuIndex + ?Sized>(
    tree: &T,
    n: u32,
    q: &[f32],
    out: &mut Vec<(f32, u32)>,
) {
    for p in tree.leaf_points(n) {
        out.push((psb_geom::dist(q, tree.point(p)), tree.point_id(p)));
    }
}

/// A flattened n-ary spatial index traversable by the data-parallel kernels.
///
/// Structural contract (checked by each implementation's `validate`):
/// children of a node are contiguous node ids; leaves are numbered densely
/// left-to-right and own contiguous runs of the reordered point array; every
/// node knows the max leaf id under it; `leaf_node_of(l + 1)` is the right
/// sibling of leaf `l`.
pub trait GpuIndex: Sync {
    /// Dimensionality of the indexed space.
    fn dims(&self) -> usize;
    /// Maximum children per node (= leaf capacity).
    fn degree(&self) -> usize;
    /// Root node id.
    fn root(&self) -> u32;
    /// Whether `n` is a leaf.
    fn is_leaf(&self, n: u32) -> bool;
    /// Children of internal node `n` (contiguous).
    fn children(&self, n: u32) -> std::ops::Range<u32>;
    /// Parent of `n` (undefined for the root).
    fn parent(&self, n: u32) -> u32;
    /// Point positions of leaf `n`.
    fn leaf_points(&self, n: u32) -> std::ops::Range<usize>;
    /// Coordinates at point position `pos`.
    fn point(&self, pos: usize) -> &[f32];
    /// Original dataset id at point position `pos`.
    fn point_id(&self, pos: usize) -> u32;
    /// Dense left-to-right leaf number of leaf `n`.
    fn leaf_id(&self, n: u32) -> u32;
    /// Node id of leaf number `l`.
    fn leaf_node_of(&self, l: u32) -> u32;
    /// Number of leaves.
    fn num_leaves(&self) -> usize;
    /// Total number of nodes (exclusive bound on valid node ids). The
    /// hardened kernels bounds-check every followed link against this and
    /// derive their traversal step budget from it.
    fn num_nodes(&self) -> usize;
    /// Total number of indexed point positions (exclusive bound on valid
    /// positions). Also the domain of the exact brute-force fallback scan.
    fn num_points(&self) -> usize;
    /// Largest leaf id under `n`'s subtree.
    fn subtree_max_leaf(&self, n: u32) -> u32;
    /// Rope (escape) link of node `n`: the next node in depth-first preorder
    /// *after skipping `n`'s entire subtree* — the right sibling when one
    /// exists, else the nearest ancestor's right sibling — or [`NO_ROPE`] for
    /// the root and the rightmost spine. Stack-free traversals
    /// ([`KernelOptions::rope`](crate::KernelOptions)) follow it instead of
    /// backtracking through parent links or re-descending from the root.
    fn rope(&self, n: u32) -> u32;
    /// Depth of node `n` below the root (root = 0). Feeds the per-level visit
    /// histogram when a stack-free traversal arrives at a node without having
    /// tracked a descent counter.
    fn node_depth(&self, n: u32) -> u32;
    /// Total modeled device-resident footprint of the index in bytes: every
    /// node's fetched representation (internal child-volume blocks plus leaf
    /// point blocks — the arena *and* the reordered points it packs). This is
    /// the paper's index-memory comparison number, reported by `inspect` and
    /// the bench harness's `memory` section.
    fn index_bytes(&self) -> u64;
    /// Bytes fetched for internal node `n` (its child bounding volumes, SoA).
    fn internal_node_bytes(&self, n: u32) -> u64;
    /// Bytes fetched for leaf node `n` (its points, SoA).
    fn leaf_node_bytes(&self, n: u32) -> u64;
    /// Bytes per child entry (for the AoS strided-layout ablation).
    fn child_entry_bytes(&self) -> u64;
    /// Bytes per point entry (for the AoS strided-layout ablation).
    fn point_entry_bytes(&self) -> u64;

    /// MINDIST (and MAXDIST when `with_max`) from `q` to child `c`'s bounding
    /// volume. When `with_max` is false the second component is unspecified.
    fn child_min_max(&self, c: u32, q: &[f32], with_max: bool) -> (f32, f32);

    /// Instruction cost of one `child_min_max` evaluation under the cost
    /// model. This is where sphere and rectangle indexes differ (§II-C).
    fn child_eval_cost(&self, with_max: bool) -> u64;

    /// Distance from `q` to child `c`'s representative point (sphere center /
    /// rectangle center). Used as the tie-break when several overlapping
    /// volumes report `MINDIST = 0` during the initial greedy descent.
    fn child_anchor_dist(&self, c: u32, q: &[f32]) -> f32;

    /// Evaluate every child of internal node `n` against `q` in one pass:
    /// MINDIST always, MAXDIST when `with_max`, anchor distance when
    /// `with_anchor`, appended to `out` in child order.
    ///
    /// The default gathers through the scattered per-child accessors exactly
    /// like the historical kernel loop; packed-arena implementations override
    /// it to stream one contiguous SoA block. Overrides must be **bit-identical**
    /// to the default — the sweep is a host-speed change only, pinned down by
    /// the layout-parity suite.
    fn child_sweep(
        &self,
        n: u32,
        q: &[f32],
        _dk: &DistKernel,
        with_max: bool,
        with_anchor: bool,
        out: &mut SweepScratch,
    ) {
        gather_child_sweep(self, n, q, with_max, with_anchor, out);
    }

    /// Evaluate every point of leaf node `n` against `q`, appending
    /// `(distance, original id)` pairs to `out` in point order. Same
    /// bit-identity contract as [`GpuIndex::child_sweep`]. `tmp` is pooled
    /// staging for the batched row kernels (arena implementations run
    /// [`DistKernel::dist_rows`] into it, then zip with the packed ids); the
    /// gather default ignores it.
    fn leaf_sweep(
        &self,
        n: u32,
        q: &[f32],
        _dk: &DistKernel,
        _tmp: &mut Vec<f32>,
        out: &mut Vec<(f32, u32)>,
    ) {
        gather_leaf_sweep(self, n, q, out);
    }
}

/// An implicit left-balanced kd-tree traversable by the stack-free kernel
/// (Wald's arithmetic parent-link traversal — see `kernels::stackfree`).
///
/// The index *is* the reordered points array: every node holds exactly one
/// point, children live at `2n + 1` / `2n + 2`, and the splitting plane is the
/// node's own coordinate in the round-robin dimension — no bounding volumes,
/// no child pointers, no per-node metadata. The [`GpuIndex`] supertrait keeps
/// the family on the engine plumbing (recovery fallback, scheduling,
/// `index_bytes`, inspection); the bounding-volume kernels themselves are
/// **not** routed to it (`child_min_max` has nothing to evaluate — a
/// documented opt-out).
pub trait ImplicitKdIndex: GpuIndex {
    /// Point position held by node `n`. The left-balanced layout stores one
    /// point per node in heap order, so the default is the identity.
    fn node_point(&self, n: u32) -> usize {
        n as usize
    }
    /// Splitting dimension of node `n` (round-robin by depth in Wald's
    /// construction).
    fn split_dim(&self, n: u32) -> usize;
}

impl GpuIndex for SsTree {
    fn dims(&self) -> usize {
        self.dims
    }
    fn degree(&self) -> usize {
        self.degree
    }
    fn root(&self) -> u32 {
        self.root
    }
    fn is_leaf(&self, n: u32) -> bool {
        SsTree::is_leaf(self, n)
    }
    fn children(&self, n: u32) -> std::ops::Range<u32> {
        SsTree::children(self, n)
    }
    fn parent(&self, n: u32) -> u32 {
        self.parent[n as usize]
    }
    fn leaf_points(&self, n: u32) -> std::ops::Range<usize> {
        SsTree::leaf_points(self, n)
    }
    fn point(&self, pos: usize) -> &[f32] {
        self.points.point(pos)
    }
    fn point_id(&self, pos: usize) -> u32 {
        self.point_ids[pos]
    }
    fn leaf_id(&self, n: u32) -> u32 {
        self.leaf_id[n as usize]
    }
    fn leaf_node_of(&self, l: u32) -> u32 {
        self.leaf_node_of[l as usize]
    }
    fn num_leaves(&self) -> usize {
        SsTree::num_leaves(self)
    }
    fn num_nodes(&self) -> usize {
        SsTree::num_nodes(self)
    }
    fn num_points(&self) -> usize {
        self.points.len()
    }
    fn subtree_max_leaf(&self, n: u32) -> u32 {
        self.subtree_max_leaf[n as usize]
    }
    fn rope(&self, n: u32) -> u32 {
        // Every construction/load path derives ropes in `rebuild_arena`; an
        // empty array means a hand-assembled tree that skipped it — an API
        // misuse, not device corruption, so it asserts rather than erroring.
        assert!(!self.rope.is_empty(), "rope links missing: call rebuild_arena() first");
        self.rope[n as usize]
    }
    fn node_depth(&self, n: u32) -> u32 {
        (self.level[self.root as usize] - self.level[n as usize]) as u32
    }
    fn index_bytes(&self) -> u64 {
        // Node bytes already include the leaf point blocks: internal nodes
        // carry the child-sphere SoA, leaves carry their packed points + ids.
        self.total_bytes()
    }
    fn internal_node_bytes(&self, n: u32) -> u64 {
        SsTree::internal_node_bytes(self, n)
    }
    fn leaf_node_bytes(&self, n: u32) -> u64 {
        SsTree::leaf_node_bytes(self, n)
    }
    fn child_entry_bytes(&self) -> u64 {
        self.dims as u64 * 4 + 4 + 12
    }
    fn point_entry_bytes(&self) -> u64 {
        self.dims as u64 * 4 + 4
    }

    fn child_min_max(&self, c: u32, q: &[f32], _with_max: bool) -> (f32, f32) {
        // One center distance yields both bounds — the sphere advantage.
        let center_d = psb_geom::dist(q, self.center(c));
        let r = self.radius(c);
        ((center_d - r).max(0.0), center_d + r)
    }

    fn child_eval_cost(&self, _with_max: bool) -> u64 {
        // Distance + radius add/subtract; MAXDIST is free (same distance).
        crate::dist_cost(self.dims) + 2
    }

    fn child_anchor_dist(&self, c: u32, q: &[f32]) -> f32 {
        psb_geom::dist(q, self.center(c))
    }

    fn child_sweep(
        &self,
        n: u32,
        q: &[f32],
        dk: &DistKernel,
        with_max: bool,
        with_anchor: bool,
        out: &mut SweepScratch,
    ) {
        let kids = SsTree::children(self, n);
        let blk = self.arena.as_ref().and_then(|a| a.internal(n, kids.start, kids.len()));
        let Some(blk) = blk else {
            // Stale/absent arena (stripped for benchmarking, or the tree was
            // mutated underneath it): the bounds-checked gather path.
            gather_child_sweep(self, n, q, with_max, with_anchor, out);
            return;
        };
        // One batched row sweep over the packed center block (center distance
        // once per child), then both bounds and the anchor derived from it —
        // bit-identical to the gather path (same kernel, same data, same op
        // order per value; the row form only changes where the loop lives).
        out.tmp.clear();
        dk.dist_rows(q, blk.centers, &mut out.tmp);
        for (&cd, &r) in out.tmp.iter().zip(blk.radii) {
            out.min_d.push((cd - r).max(0.0));
            if with_max {
                out.max_d.push(cd + r);
            }
            if with_anchor {
                out.anchor_d.push(cd);
            }
        }
    }

    fn leaf_sweep(
        &self,
        n: u32,
        q: &[f32],
        dk: &DistKernel,
        tmp: &mut Vec<f32>,
        out: &mut Vec<(f32, u32)>,
    ) {
        let run = SsTree::leaf_points(self, n);
        let blk = self.arena.as_ref().and_then(|a| a.leaf(n, run.start as u32, run.len()));
        let Some(blk) = blk else {
            gather_leaf_sweep(self, n, q, out);
            return;
        };
        tmp.clear();
        dk.dist_rows(q, blk.coords, tmp);
        for (i, &d) in tmp.iter().enumerate() {
            out.push((d, blk.id(i)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_data::ClusteredSpec;
    use psb_sstree::{build, BuildMethod};

    #[test]
    fn sstree_implements_the_contract() {
        let ps =
            ClusteredSpec { clusters: 4, points_per_cluster: 200, dims: 3, sigma: 50.0, seed: 71 }
                .generate();
        let tree = build(&ps, 16, &BuildMethod::Hilbert);
        let t: &dyn Fn(&SsTree) = &|tree| {
            assert_eq!(GpuIndex::dims(tree), 3);
            assert_eq!(GpuIndex::degree(tree), 16);
            let root = GpuIndex::root(tree);
            assert!(!GpuIndex::is_leaf(tree, root));
            let kids = GpuIndex::children(tree, root);
            assert!(!kids.is_empty());
            for c in kids {
                assert_eq!(GpuIndex::parent(tree, c), root);
            }
            // Leaf chain is dense and consistent.
            for l in 0..GpuIndex::num_leaves(tree) as u32 {
                let n = GpuIndex::leaf_node_of(tree, l);
                assert_eq!(GpuIndex::leaf_id(tree, n), l);
                assert_eq!(GpuIndex::subtree_max_leaf(tree, n), l);
            }
        };
        t(&tree);
    }

    #[test]
    fn sphere_min_max_from_one_distance() {
        let ps =
            ClusteredSpec { clusters: 2, points_per_cluster: 100, dims: 2, sigma: 20.0, seed: 72 }
                .generate();
        let tree = build(&ps, 8, &BuildMethod::Hilbert);
        let c = GpuIndex::children(&tree, tree.root).start;
        let q = vec![0.0f32, 0.0];
        let (lo, hi) = GpuIndex::child_min_max(&tree, c, &q, true);
        assert!(lo <= hi);
        assert_eq!(lo, tree.sphere(c).min_dist(&q));
        assert_eq!(hi, tree.sphere(c).max_dist(&q));
    }

    #[test]
    fn maxdist_costs_nothing_extra_for_spheres() {
        let ps =
            ClusteredSpec { clusters: 2, points_per_cluster: 50, dims: 8, sigma: 20.0, seed: 73 }
                .generate();
        let tree = build(&ps, 8, &BuildMethod::Hilbert);
        assert_eq!(GpuIndex::child_eval_cost(&tree, false), GpuIndex::child_eval_cost(&tree, true));
    }
}
