//! The k-best candidate list a thread block maintains in shared memory.
//!
//! The paper stores the k pruning distances in shared memory because every
//! thread of the block reads and updates them (§V-E); this is why response time
//! degrades super-linearly with k (Fig. 8) — the list's footprint reduces
//! occupancy. The §V-E extension ("keep only a couple of large pruning
//! distances in shared memory but the rest ... in global memory") is
//! implemented as [`SharedMemPolicy::Hybrid`]: insertions that land in the
//! rarely-updated small-distance region pay a global-memory write instead of
//! shared-memory traffic.
//!
//! Results are exact: the list is a plain sorted array on the host; only the
//! *cost* of maintaining it is modeled.

use psb_gpu::{Block, TraceEvent};
use psb_sstree::Neighbor;

/// Placement policy for the k-best list (paper §V-E).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SharedMemPolicy {
    /// All k distances + ids in shared memory (the paper's evaluated design).
    AllShared,
    /// The `shared_slots` *largest* distances (the hot end that gates pruning)
    /// in shared memory; the small, rarely-touched remainder in global memory.
    Hybrid { shared_slots: usize },
}

/// Bytes per list entry: f32 distance + u32 id.
const ENTRY_BYTES: u64 = 8;

/// A metered k-best list.
pub struct GpuKnnList {
    k: usize,
    /// Ascending by (distance, id); at most k entries.
    entries: Vec<Neighbor>,
    /// Entries at rank >= `global_from` live in shared memory (the large end);
    /// ranks below it live in global memory under the hybrid policy.
    global_region: usize,
    update_cost: u64,
}

impl GpuKnnList {
    /// Creates the list and reserves its shared-memory footprint on `block`.
    ///
    /// Under [`SharedMemPolicy::AllShared`] the whole list must fit in shared
    /// memory; if it cannot (huge k), the constructor degrades to a hybrid
    /// split at the largest size that fits, which is what a real implementation
    /// would be forced to do.
    /// Generic over the block's metering mode: shared-memory reservation
    /// stays functional on an unmetered block, so the hybrid split comes out
    /// identical in both modes (part of the fast-path parity contract).
    pub fn new<const M: bool>(
        k: usize,
        policy: SharedMemPolicy,
        block: &mut Block<'_, M>,
        smem_per_sm: u64,
    ) -> Self {
        assert!(k >= 1, "k must be at least 1");
        let want_shared = match policy {
            SharedMemPolicy::AllShared => k,
            SharedMemPolicy::Hybrid { shared_slots } => shared_slots.clamp(1, k),
        };
        let mut shared = want_shared;
        while shared > 1 && block.reserve_shared(shared as u64 * ENTRY_BYTES, smem_per_sm).is_err()
        {
            shared /= 2;
        }
        if shared == 1 {
            // A single boundary slot always fits on any realistic device.
            let _ = block.reserve_shared(ENTRY_BYTES, smem_per_sm);
        }
        Self {
            k,
            entries: Vec::with_capacity(k + 1),
            global_region: k - shared.min(k),
            update_cost: (k.next_power_of_two().trailing_zeros() as u64).max(1),
        }
    }

    /// Current pruning distance: the k-th best distance, or ∞ until k found.
    pub fn bound(&self) -> f32 {
        if self.entries.len() < self.k {
            f32::INFINITY
        } else {
            self.entries.last().map_or(f32::INFINITY, |n| n.dist)
        }
    }

    /// Number of candidates currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no candidate has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Offers a candidate. Returns true when the list (and hence the pruning
    /// distance or result set) changed — PSB's leaf-scan continuation test.
    /// Metering: an accepted candidate costs a serialized sift
    /// (`log2 k` instructions on one lane); one landing in the global region of
    /// a hybrid list additionally pays a global write.
    pub fn offer<const M: bool>(&mut self, block: &mut Block<'_, M>, dist: f32, id: u32) -> bool {
        // A NaN distance can only come from corrupted geometry (e.g. an
        // injected bit flip in the exponent): it would land at an arbitrary
        // partition point and silently break the sorted order, so reject it
        // outright. No metering — a real GPU's `dist < pruningDist` test is
        // false for NaN and skips the update path entirely.
        if dist.is_nan() {
            return false;
        }
        let phase = block.phase();
        if self.entries.len() >= self.k && dist >= self.bound() {
            block.emit(|| TraceEvent::KnnUpdate { pruned: true, phase });
            return false;
        }
        let pos = self.entries.partition_point(|n| (n.dist, n.id) < (dist, id));
        // PSB's sweep can re-scan the leaf already processed during the initial
        // greedy descent; the same (point, distance) pair must not enter twice.
        if self.entries.get(pos).is_some_and(|n| n.id == id && n.dist == dist) {
            block.emit(|| TraceEvent::KnnUpdate { pruned: true, phase });
            return false;
        }
        self.entries.insert(pos, Neighbor { dist, id });
        if self.entries.len() > self.k {
            self.entries.pop();
        }
        block.scalar(self.update_cost);
        if pos < self.global_region {
            block.load_global(ENTRY_BYTES);
        }
        block.emit(|| TraceEvent::KnnUpdate { pruned: false, phase });
        true
    }

    /// Final results, ascending by distance.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_gpu::DeviceConfig;

    fn block() -> (Block<'static>, u64) {
        let cfg = DeviceConfig::k40();
        (Block::new(32, &cfg), cfg.smem_per_sm)
    }

    #[test]
    fn keeps_k_smallest() {
        let (mut b, smem) = block();
        let mut list = GpuKnnList::new(3, SharedMemPolicy::AllShared, &mut b, smem);
        for (d, id) in [(5.0, 0), (1.0, 1), (4.0, 2), (2.0, 3), (9.0, 4)] {
            list.offer(&mut b, d, id);
        }
        let out = list.into_sorted();
        let dists: Vec<f32> = out.iter().map(|n| n.dist).collect();
        assert_eq!(dists, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn bound_is_infinite_until_full() {
        let (mut b, smem) = block();
        let mut list = GpuKnnList::new(2, SharedMemPolicy::AllShared, &mut b, smem);
        assert_eq!(list.bound(), f32::INFINITY);
        list.offer(&mut b, 3.0, 0);
        assert_eq!(list.bound(), f32::INFINITY);
        list.offer(&mut b, 1.0, 1);
        assert_eq!(list.bound(), 3.0);
    }

    #[test]
    fn offer_reports_change() {
        let (mut b, smem) = block();
        let mut list = GpuKnnList::new(1, SharedMemPolicy::AllShared, &mut b, smem);
        assert!(list.offer(&mut b, 2.0, 0));
        assert!(!list.offer(&mut b, 5.0, 1), "worse candidate must not change");
        assert!(list.offer(&mut b, 1.0, 2));
    }

    #[test]
    fn reserves_shared_memory() {
        let (mut b, smem) = block();
        let _ = GpuKnnList::new(1024, SharedMemPolicy::AllShared, &mut b, smem);
        assert_eq!(b.stats().smem_peak_bytes, 1024 * 8);
    }

    #[test]
    fn hybrid_reserves_less_and_writes_global() {
        let (mut b, smem) = block();
        let mut list =
            GpuKnnList::new(1024, SharedMemPolicy::Hybrid { shared_slots: 16 }, &mut b, smem);
        assert_eq!(b.stats().smem_peak_bytes, 16 * 8);
        // Fill, then force an insertion at rank 0 (global region).
        for i in 0..1024 {
            list.offer(&mut b, 100.0 + i as f32, i);
        }
        let before = b.stats().global_bytes;
        list.offer(&mut b, 0.5, 9999);
        assert_eq!(b.stats().global_bytes, before + 8);
    }

    #[test]
    fn all_shared_never_touches_global() {
        let (mut b, smem) = block();
        let mut list = GpuKnnList::new(8, SharedMemPolicy::AllShared, &mut b, smem);
        for i in 0..100 {
            list.offer(&mut b, 100.0 - i as f32, i);
        }
        assert_eq!(b.stats().global_bytes, 0);
    }

    #[test]
    fn oversized_k_degrades_to_a_fitting_split() {
        let cfg = DeviceConfig::k40();
        let mut b: Block<'_> = Block::new(32, &cfg);
        // 10_000 entries = 80 KB > 48 KB: must halve until it fits.
        let list = GpuKnnList::new(10_000, SharedMemPolicy::AllShared, &mut b, cfg.smem_per_sm);
        assert!(b.stats().smem_peak_bytes <= cfg.smem_per_sm);
        assert!(b.stats().smem_peak_bytes >= 16 * 1024, "should use most of smem");
        assert!(list.global_region > 0);
    }

    #[test]
    fn equal_distance_candidates_do_not_displace() {
        // Once the list is full, a candidate at exactly the k-th distance is
        // rejected (dist >= bound): the distance multiset is already optimal,
        // and this mirrors the GPU update test `dist < pruningDist`.
        let (mut b, smem) = block();
        let mut list = GpuKnnList::new(2, SharedMemPolicy::AllShared, &mut b, smem);
        assert!(list.offer(&mut b, 1.0, 7));
        assert!(list.offer(&mut b, 1.0, 3));
        assert!(!list.offer(&mut b, 1.0, 5));
        let out = list.into_sorted();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 7]);
    }

    #[test]
    fn nan_distance_is_rejected() {
        let (mut b, smem) = block();
        let mut list = GpuKnnList::new(2, SharedMemPolicy::AllShared, &mut b, smem);
        assert!(!list.offer(&mut b, f32::NAN, 0), "NaN must never enter the list");
        assert!(list.is_empty());
        list.offer(&mut b, 1.0, 1);
        assert!(!list.offer(&mut b, f32::NAN, 2));
        assert_eq!(list.len(), 1);
        assert_eq!(list.into_sorted()[0].id, 1);
    }

    #[test]
    fn duplicate_point_is_inserted_once() {
        let (mut b, smem) = block();
        let mut list = GpuKnnList::new(4, SharedMemPolicy::AllShared, &mut b, smem);
        assert!(list.offer(&mut b, 2.0, 9));
        assert!(!list.offer(&mut b, 2.0, 9), "same point must not enter twice");
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn k_of_one_tracks_the_single_best() {
        let (mut b, smem) = block();
        let mut list = GpuKnnList::new(1, SharedMemPolicy::AllShared, &mut b, smem);
        assert_eq!(list.bound(), f32::INFINITY);
        assert!(list.offer(&mut b, 7.0, 0));
        assert_eq!(list.bound(), 7.0);
        assert!(!list.offer(&mut b, 7.0, 1), "tie at the bound must not displace");
        assert!(list.offer(&mut b, 3.0, 2));
        assert!(!list.offer(&mut b, 5.0, 3));
        let out = list.into_sorted();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 2);
        assert_eq!(out[0].dist, 3.0);
    }

    #[test]
    fn k_at_least_n_keeps_every_candidate() {
        // k >= number of offered points: nothing is ever evicted and the
        // bound stays infinite, so no candidate can be pruned away.
        let (mut b, smem) = block();
        let mut list = GpuKnnList::new(10, SharedMemPolicy::AllShared, &mut b, smem);
        for i in 0..6u32 {
            assert!(list.offer(&mut b, 10.0 - i as f32, i));
            assert_eq!(list.bound(), f32::INFINITY, "bound must stay open below k");
        }
        let out = list.into_sorted();
        assert_eq!(out.len(), 6);
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![5, 4, 3, 2, 1, 0]);
        for w in out.windows(2) {
            assert!(w[0].dist <= w[1].dist, "results must stay ascending");
        }
    }

    #[test]
    fn duplicate_distances_break_ties_by_ascending_id() {
        // Many candidates at the same distance: the list orders by (dist, id),
        // so the survivors are the lowest ids regardless of arrival order.
        let (mut b, smem) = block();
        let mut list = GpuKnnList::new(3, SharedMemPolicy::AllShared, &mut b, smem);
        for id in [42u32, 7, 19, 3, 28] {
            list.offer(&mut b, 2.5, id);
        }
        let out = list.into_sorted();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![7, 19, 42]);
        // First-come tie policy at the bound: once full at dist 2.5, later
        // equal-distance ids are rejected — deterministic in offer order,
        // which the layout-parity suite relies on (arena and legacy sweeps
        // offer in identical order, hence identical ids).
        let (mut b2, smem2) = block();
        let mut list2 = GpuKnnList::new(3, SharedMemPolicy::AllShared, &mut b2, smem2);
        for id in [3u32, 28, 7, 42, 19] {
            list2.offer(&mut b2, 2.5, id);
        }
        assert_eq!(
            list2.into_sorted().iter().map(|n| n.id).collect::<Vec<_>>(),
            vec![3, 7, 28],
            "tie survivors are the first k offered, in (dist, id) order"
        );
    }
}
