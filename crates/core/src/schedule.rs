//! Spatial query scheduling: order a batch along the Hilbert curve.
//!
//! The paper's batches (240 queries, §V-B) arrive in arbitrary order, so
//! consecutive host tasks traverse unrelated subtrees. Scheduling sorts the
//! batch by the Hilbert key of each query point (the same curve the bottom-up
//! build packs leaves with), so consecutive tasks descend into overlapping
//! subtrees — warm arena cache lines on the host, and spatially coherent
//! physical blocks when the launch fuses queries ([`launch_blocks_fused`]'s
//! `order` argument groups neighbors into one block).
//!
//! The schedule is a *pure permutation*: the engine executes queries in
//! scheduled order and un-permutes neighbors, per-query counters, and outcomes
//! back to submission order, so results and [`KernelStats`] are bit-identical
//! to the unscheduled engine (`tests/schedule_parity.rs` proves this per
//! kernel and index type).
//!
//! [`launch_blocks_fused`]: psb_gpu::launch_blocks_fused
//! [`KernelStats`]: psb_gpu::KernelStats

use psb_geom::{hilbert_key, HilbertKey, PointSet, Rect};

/// How the engine orders a batch's queries for execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QuerySchedule {
    /// Run queries in the order they were submitted (the reference path).
    #[default]
    Submission,
    /// Run queries in Hilbert-curve order of their coordinates, un-permuting
    /// all per-query outputs back to submission order afterwards. Also routes
    /// PSB through the throughput kernel, which memoizes backtrack re-sweeps
    /// in the per-batch arena (bit-identical values and counters, less host
    /// work per revisit).
    Hilbert,
}

/// Reusable scratch for computing schedules: the key buffer and a permutation
/// free-list, so a streaming pipeline ([`crate::QueryStream`]) sorts every
/// chunk of a long session into the same per-batch arena instead of
/// allocating per chunk.
#[derive(Default)]
pub struct ScheduleScratch {
    keys: Vec<(HilbertKey, u32)>,
    spare: Vec<Vec<u32>>,
}

impl ScheduleScratch {
    /// Hand back a permutation vector for reuse by a later
    /// [`hilbert_permutation`] call.
    pub fn recycle(&mut self, mut perm: Vec<u32>) {
        perm.clear();
        self.spare.push(perm);
    }
}

/// Compute the deterministic Hilbert-order permutation of `queries` into a
/// vector drawn from (and keyed against) `scratch`. `perm[j]` is the
/// submission index of the `j`-th query to execute. Ties (identical Hilbert
/// keys, e.g. duplicate query points) break by submission index, so the
/// schedule is a total order and re-runs are identical.
pub fn hilbert_permutation(queries: &PointSet, scratch: &mut ScheduleScratch) -> Vec<u32> {
    let bounds = Rect::of_point_set(queries);
    scratch.keys.clear();
    scratch.keys.reserve(queries.len());
    for i in 0..queries.len() {
        scratch.keys.push((hilbert_key(queries.point(i), &bounds), i as u32));
    }
    // HilbertKey is a total order; (key, submission index) has no equal
    // elements, so an unstable sort is deterministic.
    scratch.keys.sort_unstable();
    let mut perm = scratch.spare.pop().unwrap_or_default();
    perm.clear();
    perm.extend(scratch.keys.iter().map(|&(_, i)| i));
    perm
}

/// Convenience wrapper over [`hilbert_permutation`] with throwaway scratch.
pub fn hilbert_order(queries: &PointSet) -> Vec<u32> {
    hilbert_permutation(queries, &mut ScheduleScratch::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queries() -> PointSet {
        let mut ps = PointSet::new(2);
        // A scattered submission order over a 2-D grid.
        for (x, y) in [(90.0, 90.0), (1.0, 2.0), (50.0, 55.0), (2.0, 1.0), (91.0, 89.0)] {
            ps.push(&[x, y]);
        }
        ps
    }

    #[test]
    fn permutation_is_a_permutation() {
        let q = queries();
        let mut perm = hilbert_order(&q);
        assert_eq!(perm.len(), q.len());
        perm.sort_unstable();
        assert_eq!(perm, (0..q.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn spatial_neighbors_become_schedule_neighbors() {
        let q = queries();
        let perm = hilbert_order(&q);
        let pos = |i: u32| perm.iter().position(|&p| p == i).unwrap() as i64;
        // (0, 4) and (1, 3) are near-duplicates in space; each pair must be
        // adjacent in the schedule.
        assert_eq!((pos(0) - pos(4)).abs(), 1);
        assert_eq!((pos(1) - pos(3)).abs(), 1);
    }

    #[test]
    fn duplicate_points_tie_break_by_submission_index() {
        let mut q = PointSet::new(3);
        for _ in 0..4 {
            q.push(&[5.0, 5.0, 5.0]);
        }
        assert_eq!(hilbert_order(&q), vec![0, 1, 2, 3]);
    }

    #[test]
    fn scratch_reuse_is_identical_and_recycles_buffers() {
        let q = queries();
        let mut scratch = ScheduleScratch::default();
        let a = hilbert_permutation(&q, &mut scratch);
        let expect = a.clone();
        scratch.recycle(a);
        let b = hilbert_permutation(&q, &mut scratch);
        assert_eq!(b, expect);
    }
}
