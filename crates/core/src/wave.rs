//! Buffer-wave node-centric batch traversal (ROADMAP item 1).
//!
//! Every per-query kernel in this crate walks the tree once per query: a hot
//! node's arena block is re-fetched (and its metering re-paid) once for every
//! query that reaches it, and PSB's stackless backtracking re-descends through
//! the same internal nodes tens of times per query on poorly-pruning
//! workloads. This module inverts the loop, following Gieseke et al.'s
//! *Bigger Buffer k-d Trees* (PAPERS.md): **nodes own query buffers**, and the
//! batch moves down the tree in level-synchronous *waves*:
//!
//! 1. **Priming** — every query runs PSB's phase-1 greedy descent (identical
//!    code path and metering) so its pruning bound is finite before the wave
//!    sweep starts. Range queries skip this: their bound is the fixed radius.
//! 2. **Seeding** — every query is pushed into the root node's buffer, in
//!    scheduled order ([`QuerySchedule::Hilbert`] seeds Hilbert-adjacent
//!    queries adjacently, so capacity-bounded flushes group spatially
//!    coherent queries).
//! 3. **Waves** — for each tree level, every node with a non-empty buffer is
//!    swept **once**: its arena block is fetched one time and the fetch is
//!    amortized over the buffered queries ([`Block::load_global_share`]);
//!    each buffered query prunes against its *current* bound (which may have
//!    tightened since it enqueued itself), sweeps the children via the same
//!    [`GpuIndex::child_sweep`]/[`GpuIndex::leaf_sweep`] hooks as the
//!    per-query kernels, tightens its bound with the k-th-MAXDIST rule, and
//!    appends itself to the buffers of surviving children. Leaf sweeps fold
//!    candidates into the query's [`GpuKnnList`] (or the range hit list).
//! 4. **Bounded buffers** — a buffer that reaches [`WaveConfig::capacity`]
//!    during insertion is flushed immediately (processed early, cascading
//!    into its children); capacity therefore changes only *when* work
//!    happens, never *what* the results are (`tests/wave_parity.rs` proves
//!    capacity-invariance by property test).
//!
//! ## Exactness
//!
//! A query's bound only tightens, every prune requires `MINDIST >= bound`
//! (kNN; `> radius` for range), and the true k-th distance is a lower bound
//! on every intermediate bound — so a subtree containing a true neighbor can
//! never be pruned, every leaf that can matter is swept, and the k-best list
//! converges to exactly the per-query kernel's result. Neighbors and
//! outcomes are bit-identical to the per-query engines (golden tests across
//! all kernels, both index families); `KernelStats` are *not* comparable —
//! the whole point is that the wave engine does strictly less memory work.
//!
//! ## Metering model
//!
//! Per coalesced sweep of a buffer holding `m` queries, the node's block of
//! `B` bytes / `T` transactions is fetched **once**: entry `j` is charged
//! `B/m + (j < B%m)` bytes and `T/m + (j < T%m)` transactions, so the
//! merged counters see exactly one fetch per sweep (`nodes_visited` counts
//! sweeps, charged to the rank-0 entry). Leaf-wave fetch shares are marked
//! streamed: the leaf wave walks the contiguous leaf arena left-to-right,
//! which is precisely the prefetchable linear scan the paper's leaf chain
//! exploits. Compute (child sweeps, distance evaluation, list merges) is
//! charged per query, unshared — lanes serve different queries.
//!
//! ## Host execution
//!
//! The host runs each wave query-major (rayon over queries, each processing
//! its own buffer entries in ascending node order) because per-query state —
//! block, k-best list, bound — is disjoint per query; buffer membership,
//! entry ranks, and fetch shares are fixed node-major before the wave runs,
//! so the metered schedule is the node-centric one regardless of host
//! interleaving, and results are deterministic under any thread count.
//!
//! ## Faults
//!
//! Like the PSB sweep-replay memo, the wave engine serves the fault-free
//! path only: the `*_batch_recovering` runners route to the per-query
//! recovery ladder whenever a real [`FaultPlan`](psb_gpu::FaultPlan) is
//! attached, so corruption still yields typed errors or exact degraded
//! results, never panics (`tests/wave_parity.rs`).

use psb_geom::PointSet;
use psb_gpu::{launch_blocks_fused, Block, DeviceConfig, NodeKind, Phase};
use psb_sstree::Neighbor;
use rayon::prelude::*;

use crate::engine::{record_batch, schedule_order, warps_of, QueryBatchResult};
use crate::error::{EngineError, KernelError, QueryOutcome};
use crate::index::GpuIndex;
use crate::kernels::{
    checked_children, checked_leaf_points, checked_root, child_distances, fetch_internal,
    kth_maxdist, process_leaf, with_scratch, Budget, Scratch,
};
use crate::knnlist::GpuKnnList;
use crate::options::{KernelOptions, Metering, NodeLayout};

/// Configuration of the buffer-wave engine, carried in
/// [`KernelOptions::wave`]: `Some` routes the batch engines (psb / bnb /
/// restart / range) through [`wave_knn_batch`] / [`wave_range_batch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaveConfig {
    /// Maximum queries a node buffer holds before it is flushed early
    /// (swept immediately, possibly cascading into child buffers). Sizes the
    /// engine's working set: a buffer entry is 8 bytes, so the worst-case
    /// buffer memory is `capacity × 8` bytes per node on one tree level.
    /// Clamped to at least 1. Capacity never changes results — only how the
    /// work is grouped (and therefore how well fetches amortize: mean buffer
    /// fill is the amortization factor).
    pub capacity: usize,
}

impl Default for WaveConfig {
    /// 1024 queries per buffer: deep enough that the paper's 240-query
    /// batches (§V-B) and [`QueryStream`](crate::QueryStream) chunks never
    /// flush early, small enough that even a root buffer stays a few KiB.
    fn default() -> Self {
        Self { capacity: 1024 }
    }
}

impl WaveConfig {
    fn cap(&self) -> usize {
        self.capacity.max(1)
    }
}

/// What the wave engine did, alongside the ordinary [`QueryBatchResult`]:
/// how many synchronous wave fronts ran, how many coalesced sweeps they
/// issued, and how full the buffers were (the fetch-amortization factor).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaveReport {
    /// Level-synchronous wave fronts that swept at least one buffer.
    /// Capacity-triggered early flushes count as sweeps, not waves.
    pub waves: u32,
    /// Node buffers swept (each is one amortized arena-block fetch).
    pub coalesced_sweeps: u64,
    /// Total buffered (node, query) entries processed across all sweeps.
    pub buffered_entries: u64,
    /// Largest buffer processed by a single sweep.
    pub max_fill: u32,
}

impl WaveReport {
    /// Mean queries per coalesced sweep — the factor by which node fetches
    /// were amortized (1.0 means the wave engine degenerated to per-query
    /// fetching).
    pub fn mean_fill(&self) -> f64 {
        if self.coalesced_sweeps == 0 {
            0.0
        } else {
            self.buffered_entries as f64 / self.coalesced_sweeps as f64
        }
    }
}

/// The two query families the wave engine runs. The push-down machinery is
/// shared; only the bound semantics differ: kNN bounds shrink as lists fill,
/// range bounds are the fixed radius (and admit `MINDIST == radius`, matching
/// the per-query range kernel's `<=` test).
#[derive(Clone, Copy)]
enum WaveMode {
    Knn { k: usize },
    Range { radius: f32 },
}

impl WaveMode {
    /// Does a node at `mindist` survive against `bound`? Mirrors the
    /// per-query kernels exactly: strict `<` for kNN (PSB line 17), `<=` for
    /// the fixed-radius sweep.
    fn admits(self, mindist: f32, bound: f32) -> bool {
        match self {
            WaveMode::Knn { .. } => mindist < bound,
            WaveMode::Range { .. } => mindist <= bound,
        }
    }
}

/// Per-query traversal state. Fields are disjoint per query, which is what
/// lets each wave run query-parallel on the host. Generic over the metering
/// mode, monomorphized once by [`run_wave`]'s launch dispatch.
struct QueryState<const M: bool> {
    block: Block<'static, M>,
    /// The k-best list (kNN mode only).
    list: Option<GpuKnnList>,
    /// Accumulated in-range hits (range mode only).
    hits: Vec<Neighbor>,
    /// Current pruning bound: k-th distance so far (kNN) or the radius.
    pruning: f32,
    /// Children this query survives into, staged during a wave's parallel
    /// phase and scattered into buffers sequentially afterwards.
    out: Vec<(u32, f32)>,
}

/// One buffered entry's worth of work, precomputed node-major so the
/// query-major host loop charges exactly the node-centric schedule.
#[derive(Clone, Copy)]
struct WorkItem {
    node: u32,
    /// Rank of this query in the node's buffer (rank 0 carries the
    /// node-visit count and the remainder-heavy fetch share).
    rank: u32,
    /// Buffer occupancy `m` the fetch is amortized over.
    fill: u32,
    /// MINDIST from tree volume to query, computed at push time; re-checked
    /// against the current bound at sweep time.
    mindist: f32,
}

/// A simulated block for one wave query: same shape as the kernels'
/// [`kernel_block`](crate::kernels), minus the trace sink (the wave engine
/// does not record event streams).
fn wave_block<const M: bool>(opts: &KernelOptions, cfg: &DeviceConfig) -> Block<'static, M> {
    let mut block = Block::new(opts.threads_per_block, cfg);
    if opts.fuse > 1 {
        block.fuse(opts.fuse);
    }
    block
}

/// Entry `j`'s share of `total` split over `m` entries: `total/m`, with the
/// first `total % m` entries carrying one unit of remainder each, so the
/// shares sum to exactly `total`.
fn share(total: u64, m: u64, j: u64) -> u64 {
    total / m + u64::from(j < total % m)
}

/// Bytes and transactions one coalesced fetch of node `n`'s arena block
/// moves, mirroring [`fetch_internal`] / [`fetch_leaf`](crate::kernels) for
/// the same layout.
fn node_fetch_cost<T: GpuIndex, const M: bool>(
    tree: &T,
    n: u32,
    leaf: bool,
    layout: NodeLayout,
    block: &Block<'_, M>,
) -> (u64, u64) {
    match layout {
        NodeLayout::Soa => {
            let bytes = if leaf { tree.leaf_node_bytes(n) } else { tree.internal_node_bytes(n) };
            (bytes, block.coalesced_transactions(bytes))
        }
        NodeLayout::Aos => {
            let (count, elem) = if leaf {
                (tree.leaf_points(n).len() as u64, tree.point_entry_bytes())
            } else {
                (tree.children(n).len() as u64, tree.child_entry_bytes())
            };
            (count * elem, count * block.coalesced_transactions(elem))
        }
    }
}

/// Depth of every node reachable from `root` (root = 0), plus the maximum.
/// Rejects cycles and diamond links with a typed error instead of hanging —
/// the wave loop's level schedule is only meaningful on a proper tree.
fn node_levels<T: GpuIndex>(tree: &T, root: u32) -> Result<(Vec<u32>, u32), KernelError> {
    let nn = tree.num_nodes();
    let mut levels = vec![u32::MAX; nn];
    levels[root as usize] = 0;
    let mut stack = vec![root];
    let mut max_level = 0u32;
    let mut popped = 0usize;
    while let Some(n) = stack.pop() {
        popped += 1;
        if popped > nn {
            return Err(KernelError::CorruptNode {
                node: n,
                detail: "cycle while leveling the tree for the wave schedule",
            });
        }
        if tree.is_leaf(n) {
            continue;
        }
        let child_level = levels[n as usize] + 1;
        max_level = max_level.max(child_level);
        for c in checked_children(tree, n)? {
            if levels[c as usize] != u32::MAX {
                return Err(KernelError::CorruptNode {
                    node: c,
                    detail: "node reachable from two parents in the wave schedule",
                });
            }
            levels[c as usize] = child_level;
            stack.push(c);
        }
    }
    Ok((levels, max_level))
}

/// PSB phase 1 for one wave query: the identical greedy descent and primed
/// leaf fold as [`psb_try_query`](crate::kernels::psb::psb_try_query), so the
/// wave's starting bound (and its metered cost) match the per-query kernel's.
fn prime_knn<T: GpuIndex, const M: bool>(
    tree: &T,
    q: &[f32],
    k: usize,
    root: u32,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    scratch: &mut Scratch,
) -> Result<QueryState<M>, KernelError> {
    let mut block = wave_block::<M>(opts, cfg);
    let static_smem = 2 * tree.degree() as u64 * 4 + block.threads() as u64 * 4;
    block
        .reserve_shared(static_smem, cfg.smem_per_sm)
        .map_err(|needed| KernelError::SmemOverflow { needed, limit: cfg.smem_per_sm })?;
    let mut list = GpuKnnList::new(k, opts.smem_policy, &mut block, cfg.smem_per_sm);
    let mut budget = Budget::for_tree(tree);
    block.set_phase(Phase::Descend);
    let mut n = root;
    let mut level = 0u32;
    while !tree.is_leaf(n) {
        budget.tick(&block)?;
        let kids = checked_children(tree, n)?;
        fetch_internal(&mut block, tree, n, opts.layout, level);
        child_distances(&mut block, tree, n, q, false, true, scratch);
        block.par_reduce(scratch.sweep.min_d.len(), 2);
        // Nearest child by (MINDIST, anchor distance) — the same tie-break
        // as PSB's descent, for the same reason (overlapping child volumes
        // tie at MINDIST 0).
        let mut best = (f32::INFINITY, f32::INFINITY);
        let mut best_c = kids.start;
        for (i, c) in kids.enumerate() {
            let key = (scratch.sweep.min_d[i], scratch.sweep.anchor_d[i]);
            if key < best {
                best = key;
                best_c = c;
            }
        }
        n = best_c;
        level += 1;
    }
    budget.tick(&block)?;
    process_leaf(&mut block, tree, n, q, &mut list, scratch, opts, false, level)?;
    let pruning = list.bound();
    Ok(QueryState { block, list: Some(list), hits: Vec::new(), pruning, out: Vec::new() })
}

/// Range-mode per-query setup: no descent (the bound is the radius), just the
/// block and the range kernel's static shared-memory reservation.
fn prime_range<T: GpuIndex, const M: bool>(
    tree: &T,
    radius: f32,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> Result<QueryState<M>, KernelError> {
    let mut block = wave_block::<M>(opts, cfg);
    let static_smem = tree.degree() as u64 * 4 + block.threads() as u64 * 4;
    block
        .reserve_shared(static_smem, cfg.smem_per_sm)
        .map_err(|needed| KernelError::SmemOverflow { needed, limit: cfg.smem_per_sm })?;
    Ok(QueryState { block, list: None, hits: Vec::new(), pruning: radius, out: Vec::new() })
}

/// Process one buffered entry: charge the query's share of the node's single
/// coalesced fetch, re-check admission against the current bound, and — if
/// the lane stays active — sweep the node for this query (children into
/// `state.out`, leaf points into the result list).
#[allow(clippy::too_many_arguments)]
fn process_entry<T: GpuIndex, const M: bool>(
    tree: &T,
    q: &[f32],
    state: &mut QueryState<M>,
    item: WorkItem,
    mode: WaveMode,
    level: u32,
    opts: &KernelOptions,
    scratch: &mut Scratch,
) -> Result<(), KernelError> {
    let n = item.node;
    let leaf = tree.is_leaf(n);
    state.block.set_phase(if leaf { Phase::LeafScan } else { Phase::Descend });
    // The node is fetched once for the whole buffer. Rank 0 carries the
    // node-visit count (merged `nodes_visited` = coalesced sweeps) and the
    // remainder-heavy share; leaf-wave shares are streamed (the wave walks
    // the contiguous leaf arena left-to-right — a prefetchable linear scan).
    if item.rank == 0 {
        state.block.visit_node(level, if leaf { NodeKind::Leaf } else { NodeKind::Internal });
    }
    let (bytes, tx) = node_fetch_cost(tree, n, leaf, opts.layout, &state.block);
    let m = u64::from(item.fill);
    let j = u64::from(item.rank);
    state.block.load_global_share(share(bytes, m, j), share(tx, m, j), leaf);
    // Admission re-check: the bound may have tightened since this query
    // pushed itself here (earlier sweeps of this very wave). A pruned entry
    // is a masked lane: it paid its fetch share but computes nothing.
    if !mode.admits(item.mindist, state.pruning) {
        return Ok(());
    }
    if leaf {
        let range = checked_leaf_points(tree, n)?;
        scratch.leaf.clear();
        let dc = crate::dist_cost(tree.dims());
        state.block.par_for(range.len(), dc, |_| {});
        tree.leaf_sweep(n, q, &scratch.dk, &mut scratch.sweep.tmp, &mut scratch.leaf);
        state.block.set_phase(Phase::ResultMerge);
        match mode {
            WaveMode::Knn { .. } => {
                if let Some(list) = &mut state.list {
                    for &(d, id) in &scratch.leaf {
                        list.offer(&mut state.block, d, id);
                    }
                    state.pruning = state.pruning.min(list.bound());
                }
            }
            WaveMode::Range { radius } => {
                let mut hit_count = 0u64;
                for &(d, id) in &scratch.leaf {
                    if d <= radius {
                        state.hits.push(Neighbor { dist: d, id });
                        hit_count += 1;
                    }
                }
                if hit_count > 0 {
                    // Append rows to the global output buffer (atomic cursor
                    // + rows), exactly as the per-query range kernel meters.
                    state.block.scalar(2);
                    state.block.load_global_stream(hit_count * 8);
                }
            }
        }
    } else {
        let kids = checked_children(tree, n)?;
        let with_max = matches!(mode, WaveMode::Knn { .. }) && opts.use_minmax_prune;
        child_distances(&mut state.block, tree, n, q, with_max, false, scratch);
        if let WaveMode::Knn { k } = mode {
            if with_max && scratch.sweep.max_d.len() >= k {
                let b = kth_maxdist(&mut state.block, &scratch.sweep.max_d, k, &mut scratch.kth);
                state.pruning = state.pruning.min(b);
            }
        }
        // One parallel admission test over the children, then a serial
        // enqueue per survivor (the buffer append).
        state.block.par_for(kids.len(), 1, |_| {});
        for (i, c) in kids.enumerate() {
            let mindist = scratch.sweep.min_d[i];
            if mode.admits(mindist, state.pruning) {
                state.block.scalar(1);
                state.out.push((c, mindist));
            }
        }
    }
    Ok(())
}

/// Everything the sequential push/flush path needs in one place.
struct WaveCtx<'a, T: GpuIndex> {
    tree: &'a T,
    queries: &'a PointSet,
    mode: WaveMode,
    opts: &'a KernelOptions,
    capacity: usize,
    levels: Vec<u32>,
}

impl<T: GpuIndex> WaveCtx<'_, T> {
    /// Append `(query, mindist)` to node `n`'s buffer; a buffer that reaches
    /// capacity is flushed (swept) immediately.
    fn push<const M: bool>(
        &self,
        buffers: &mut [Vec<(u32, f32)>],
        states: &mut [QueryState<M>],
        wr: &mut WaveReport,
        n: u32,
        entry: (u32, f32),
    ) -> Result<(), KernelError> {
        buffers[n as usize].push(entry);
        if buffers[n as usize].len() >= self.capacity {
            self.flush(buffers, states, wr, n)?;
        }
        Ok(())
    }

    /// Sweep node `n`'s buffer now (capacity overflow or end-of-wave),
    /// cascading each query's surviving children back through [`Self::push`].
    /// Entries run sequentially in buffer order; results are order-invariant
    /// because all cross-entry state (shares, ranks) is fixed before the
    /// first entry runs.
    ///
    /// Scratch is borrowed once around the whole sweep, so the distance
    /// kernel resolves per flush, not per entry. A cascading flush (capacity
    /// hit while scattering survivors) re-enters [`with_scratch`] and falls
    /// back to a fresh scratch — rare, and correctness never depends on
    /// reuse.
    fn flush<const M: bool>(
        &self,
        buffers: &mut [Vec<(u32, f32)>],
        states: &mut [QueryState<M>],
        wr: &mut WaveReport,
        n: u32,
    ) -> Result<(), KernelError> {
        let entries = std::mem::take(&mut buffers[n as usize]);
        let fill = entries.len() as u32;
        wr.coalesced_sweeps += 1;
        wr.buffered_entries += u64::from(fill);
        wr.max_fill = wr.max_fill.max(fill);
        let level = self.levels[n as usize];
        with_scratch(self.tree.dims(), self.opts.lanes, |scratch| {
            for (rank, &(q, mindist)) in entries.iter().enumerate() {
                let item = WorkItem { node: n, rank: rank as u32, fill, mindist };
                let qi = q as usize;
                process_entry(
                    self.tree,
                    self.queries.point(qi),
                    &mut states[qi],
                    item,
                    self.mode,
                    level,
                    self.opts,
                    scratch,
                )?;
                let mut out = std::mem::take(&mut states[qi].out);
                for (c, child_mindist) in out.drain(..) {
                    self.push(buffers, states, wr, c, (q, child_mindist))?;
                }
                states[qi].out = out;
            }
            Ok(())
        })
    }
}

/// The wave traversal proper: prime, seed, then sweep level by level.
fn wave_execute<T: GpuIndex, const M: bool>(
    tree: &T,
    queries: &PointSet,
    mode: WaveMode,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    capacity: usize,
    order: Option<&[u32]>,
) -> Result<(Vec<QueryState<M>>, WaveReport), KernelError> {
    let root = checked_root(tree)?;
    let (levels, max_level) = node_levels(tree, root)?;
    let nq = queries.len();

    // Priming runs query-parallel: each query owns its whole state.
    let mut states: Vec<QueryState<M>> = (0..nq)
        .into_par_iter()
        .map(|i| match mode {
            WaveMode::Knn { k } => with_scratch(tree.dims(), opts.lanes, |scratch| {
                prime_knn(tree, queries.point(i), k, root, cfg, opts, scratch)
            }),
            WaveMode::Range { radius } => prime_range(tree, radius, cfg, opts),
        })
        .collect::<Result<_, _>>()?;

    let mut buffers: Vec<Vec<(u32, f32)>> = vec![Vec::new(); tree.num_nodes()];
    let mut wr = WaveReport::default();
    let ctx = WaveCtx { tree, queries, mode, opts, capacity, levels };

    // Seed the root buffer in scheduled order. MINDIST to the root is taken
    // as 0 — the per-query kernels also enter the root unconditionally.
    match order {
        Some(perm) => {
            for &i in perm {
                ctx.push(&mut buffers, &mut states, &mut wr, root, (i, 0.0))?;
            }
        }
        None => {
            for i in 0..nq as u32 {
                ctx.push(&mut buffers, &mut states, &mut wr, root, (i, 0.0))?;
            }
        }
    }

    // Level-synchronous waves. Buffers at level L were fully populated by
    // wave L-1 (survivors only ever descend), so one front per level.
    let mut work: Vec<Vec<WorkItem>> = vec![Vec::new(); nq];
    for level in 0..=max_level {
        // Collect this wave's sweeps node-major (ascending node id): ranks,
        // fills, and shares are fixed here, before any entry runs.
        let mut sweeps: Vec<(u32, Vec<(u32, f32)>)> = Vec::new();
        for n in 0..tree.num_nodes() as u32 {
            if ctx.levels[n as usize] == level && !buffers[n as usize].is_empty() {
                sweeps.push((n, std::mem::take(&mut buffers[n as usize])));
            }
        }
        if sweeps.is_empty() {
            continue;
        }
        wr.waves += 1;
        for item in &mut work {
            item.clear();
        }
        for (n, entries) in &sweeps {
            let fill = entries.len() as u32;
            wr.coalesced_sweeps += 1;
            wr.buffered_entries += u64::from(fill);
            wr.max_fill = wr.max_fill.max(fill);
            for (rank, &(q, mindist)) in entries.iter().enumerate() {
                work[q as usize].push(WorkItem { node: *n, rank: rank as u32, fill, mindist });
            }
        }
        // Phase A (parallel): each query sweeps its entries in node order.
        // Disjoint per-query state makes this safe; the node-major schedule
        // above makes it deterministic.
        states
            .par_chunks_mut(1)
            .zip(work.par_chunks(1))
            .enumerate()
            .map(|(qi, (state, items))| {
                let (state, items) = (&mut state[0], &items[0]);
                if items.is_empty() {
                    return Ok(());
                }
                with_scratch(tree.dims(), opts.lanes, |scratch| {
                    for item in items {
                        process_entry(
                            tree,
                            queries.point(qi),
                            state,
                            *item,
                            mode,
                            level,
                            opts,
                            scratch,
                        )?;
                    }
                    Ok(())
                })
            })
            .collect::<Result<(), KernelError>>()?;
        // Phase B (sequential): scatter survivors into child buffers in
        // query order, flushing any buffer that hits capacity.
        for qi in 0..nq {
            let mut out = std::mem::take(&mut states[qi].out);
            for (c, mindist) in out.drain(..) {
                ctx.push(&mut buffers, &mut states, &mut wr, c, (qi as u32, mindist))?;
            }
            states[qi].out = out;
        }
    }
    Ok((states, wr))
}

/// Shared engine wrapper: run the wave traversal, then assemble the standard
/// [`QueryBatchResult`] (plus the [`WaveReport`]) exactly like the per-query
/// batch runners — same launch aggregation, same telemetry shape (kernel
/// label `"wave"`), plus the wave counters.
fn run_wave<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    mode: WaveMode,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    order: Option<&[u32]>,
) -> Result<(QueryBatchResult, WaveReport), EngineError> {
    // Launch-time metering dispatch: the wave engine never carries injected
    // faults (the resilience engine only routes fault-free plans here), so
    // the mode is exactly what the caller asked for.
    match opts.metering {
        Metering::Simulated => run_wave_with::<T, true>(tree, queries, mode, cfg, opts, order),
        Metering::Off => run_wave_with::<T, false>(tree, queries, mode, cfg, opts, order),
    }
}

fn run_wave_with<T: GpuIndex, const M: bool>(
    tree: &T,
    queries: &PointSet,
    mode: WaveMode,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    order: Option<&[u32]>,
) -> Result<(QueryBatchResult, WaveReport), EngineError> {
    if queries.is_empty() {
        return Err(EngineError::EmptyBatch);
    }
    assert_eq!(queries.dims(), tree.dims(), "query dimensionality mismatch");
    let capacity = opts.wave.unwrap_or_default().cap();
    let m = &opts.metrics;
    let started = m.is_attached().then(std::time::Instant::now);
    let _batch_span = m.span("engine");
    let _kernel_span = m.span("wave");
    let (states, wave) = m
        .time("execute", || wave_execute::<T, M>(tree, queries, mode, cfg, opts, capacity, order))
        .unwrap_or_else(|e| panic!("wave engine failed on a trusted tree: {e}"));
    let mut neighbors = Vec::with_capacity(states.len());
    let mut per_block = Vec::with_capacity(states.len());
    for mut state in states {
        neighbors.push(match state.list.take() {
            Some(list) => list.into_sorted(),
            None => {
                // Range mode: canonical output order, exactly as the
                // per-query range kernel sorts before returning.
                state.hits.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
                state.hits
            }
        });
        per_block.push(state.block.finish());
    }
    let report = m.time("aggregate", || {
        launch_blocks_fused(cfg, warps_of(cfg, opts), &per_block, opts.fuse, order)
    });
    record_batch(opts, "wave", started, &report);
    m.counter("wave.waves", u64::from(wave.waves));
    m.counter("wave.coalesced_sweeps", wave.coalesced_sweeps);
    m.counter("wave.buffered_entries", wave.buffered_entries);
    m.gauge("wave.mean_buffer_fill", wave.mean_fill());
    let outcomes = vec![QueryOutcome::Clean; neighbors.len()];
    Ok((QueryBatchResult { neighbors, per_block, outcomes, report }, wave))
}

/// kNN over a batch through the buffer-wave engine. Neighbors and outcomes
/// are bit-identical to [`psb_batch`](crate::psb_batch) (and the other exact
/// kNN engines); counters reflect the amortized node-centric schedule.
/// Honors [`KernelOptions::schedule`] for seeding/fusion order and
/// [`KernelOptions::wave`] for buffer capacity (default capacity if unset).
pub fn wave_knn_batch<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> Result<(QueryBatchResult, WaveReport), EngineError> {
    assert!(k >= 1, "k must be at least 1");
    let order = schedule_order(queries, opts);
    run_wave(tree, queries, WaveMode::Knn { k }, cfg, opts, order.as_deref())
}

/// [`wave_knn_batch`] with a precomputed execution order (the streaming
/// pipeline schedules chunk N+1 while chunk N executes).
pub(crate) fn wave_knn_batch_ordered<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    order: Option<&[u32]>,
) -> Result<(QueryBatchResult, WaveReport), EngineError> {
    assert!(k >= 1, "k must be at least 1");
    run_wave(tree, queries, WaveMode::Knn { k }, cfg, opts, order)
}

/// Fixed-radius range queries over a batch through the buffer-wave engine.
/// Results are bit-identical to [`range_batch`](crate::range_batch): both
/// produce the exact in-range set in canonical `(dist, id)` order.
pub fn wave_range_batch<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    radius: f32,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> Result<(QueryBatchResult, WaveReport), EngineError> {
    assert!(radius >= 0.0, "radius must be non-negative");
    let order = schedule_order(queries, opts);
    run_wave(tree, queries, WaveMode::Range { radius }, cfg, opts, order.as_deref())
}

/// [`wave_range_batch`] with a precomputed execution order.
pub(crate) fn wave_range_batch_ordered<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    radius: f32,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    order: Option<&[u32]>,
) -> Result<(QueryBatchResult, WaveReport), EngineError> {
    assert!(radius >= 0.0, "radius must be non-negative");
    run_wave(tree, queries, WaveMode::Range { radius }, cfg, opts, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_data::{sample_queries, ClusteredSpec};
    use psb_sstree::{build, BuildMethod, SsTree};

    fn setup() -> (PointSet, SsTree, PointSet) {
        let ps =
            ClusteredSpec { clusters: 5, points_per_cluster: 300, dims: 8, sigma: 140.0, seed: 77 }
                .generate();
        let tree = build(&ps, 16, &BuildMethod::Hilbert);
        let queries = sample_queries(&ps, 48, 0.01, 78);
        (ps, tree, queries)
    }

    #[test]
    fn knn_matches_the_per_query_engine_bit_for_bit() {
        let (_, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let per_query = crate::engine::psb_batch(&tree, &queries, 8, &cfg, &opts).unwrap();
        let (wave, wr) = wave_knn_batch(&tree, &queries, 8, &cfg, &opts).unwrap();
        assert_eq!(per_query.neighbors, wave.neighbors);
        assert_eq!(per_query.outcomes, wave.outcomes);
        assert!(wr.waves >= 2, "a multi-level tree needs at least two waves");
        assert!(wr.mean_fill() > 1.0, "48 queries must share sweeps");
    }

    #[test]
    fn range_matches_the_per_query_engine_bit_for_bit() {
        let (_, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let per_query = crate::engine::range_batch(&tree, &queries, 220.0, &cfg, &opts).unwrap();
        let (wave, _) = wave_range_batch(&tree, &queries, 220.0, &cfg, &opts).unwrap();
        assert_eq!(per_query.neighbors, wave.neighbors);
    }

    #[test]
    fn merged_nodes_visited_counts_coalesced_sweeps() {
        let (_, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let (wave, wr) = wave_knn_batch(&tree, &queries, 8, &cfg, &opts).unwrap();
        // Priming descends once per query (its node visits are per-query);
        // every wave sweep adds exactly one more.
        let primed: u64 = wave.per_block.iter().map(|s| s.nodes_visited).sum::<u64>();
        assert!(primed >= wr.coalesced_sweeps);
        let sweeps_share = primed - queries.len() as u64 * depth_visits(&tree);
        assert_eq!(sweeps_share, wr.coalesced_sweeps);
    }

    /// Nodes one priming descent visits: one per level plus the primed leaf.
    fn depth_visits(tree: &SsTree) -> u64 {
        let mut n = tree.root();
        let mut visits = 1u64;
        while !tree.is_leaf(n) {
            n = tree.children(n).start;
            visits += 1;
        }
        visits
    }

    #[test]
    fn wave_reads_fewer_bytes_than_the_per_query_engine() {
        let (_, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let per_query = crate::engine::psb_batch(&tree, &queries, 8, &cfg, &opts).unwrap();
        let (wave, _) = wave_knn_batch(&tree, &queries, 8, &cfg, &opts).unwrap();
        assert!(
            wave.report.merged.global_transactions < per_query.report.merged.global_transactions,
            "wave {} transactions >= per-query {}",
            wave.report.merged.global_transactions,
            per_query.report.merged.global_transactions
        );
    }

    #[test]
    fn tiny_capacity_cascades_but_stays_exact() {
        let (_, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions { wave: Some(WaveConfig { capacity: 2 }), ..Default::default() };
        let baseline =
            crate::engine::psb_batch(&tree, &queries, 8, &cfg, &KernelOptions::default()).unwrap();
        let (wave, wr) = wave_knn_batch(&tree, &queries, 8, &cfg, &opts).unwrap();
        assert_eq!(baseline.neighbors, wave.neighbors);
        assert!(wr.max_fill <= 2);
    }

    #[test]
    fn empty_batch_is_a_typed_error() {
        let (_, tree, _) = setup();
        let cfg = DeviceConfig::k40();
        let empty = PointSet::new(tree.dims());
        assert!(matches!(
            wave_knn_batch(&tree, &empty, 4, &cfg, &KernelOptions::default()),
            Err(EngineError::EmptyBatch)
        ));
    }

    #[test]
    fn share_split_is_exact() {
        for total in [0u64, 1, 7, 128, 1000] {
            for m in 1u64..12 {
                let sum: u64 = (0..m).map(|j| share(total, m, j)).sum();
                assert_eq!(sum, total, "total {total} split over {m}");
            }
        }
    }
}
