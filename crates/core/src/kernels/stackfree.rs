//! Stack-free kNN over the implicit left-balanced kd-tree.
//!
//! Wald's parent-link traversal (*Stackless Traversal of Hierarchies*, and the
//! kd-tree form in *GPU-friendly ... Left-Balanced k-d Trees*): the entire
//! traversal state is two node ids, `(curr, prev)`. Arriving at a node from
//! its parent offers the node's own point and descends toward the query's
//! side of the splitting plane; returning from the close child crosses to the
//! far child only while the plane is strictly inside the current k-th-best
//! radius; returning from the far child climbs. Parent, children, depth, and
//! the splitting dimension are all **arithmetic** on the heap index — no
//! per-thread stack, no per-level state, no node metadata beyond the point
//! itself.
//!
//! This is the opposite trade from the paper's PSB: PSB spends memory on wide
//! bounding-sphere nodes so a warp prunes whole subtrees with one coalesced
//! sweep; the stack-free kd kernel spends nothing on the index (the bench
//! `memory` section pins it to the points array plus a constant) and pays
//! with one point fetch per visited node and splitting-plane re-derivation on
//! every upward return. Running both under the same simulator makes that
//! trade measurable.
//!
//! Exactness: the far subtree is skipped only when `|q[d] - split|` is at
//! least the current k-th distance — every point in it is then at least that
//! far, so nothing skippable can improve the list. The golden suite
//! (`tests/kdtree_parity.rs`) pins results bit-identical to the brute oracle.

use psb_gpu::{DeviceConfig, FaultState, KernelStats, NodeKind, NoopSink, Phase, TraceSink};
use psb_sstree::Neighbor;

use crate::dist_cost;
use crate::error::KernelError;
use crate::index::ImplicitKdIndex;

use super::{checked_root, effective_metering, Budget, Scratch};
use crate::knnlist::GpuKnnList;
use crate::options::{KernelOptions, Metering};

/// Runs one stack-free kNN query on a simulated block.
///
/// Trusted-tree entry point: panics on a [`KernelError`]. Use
/// [`stackfree_try_query`] to handle corruption or injected faults.
pub fn stackfree_query<T: ImplicitKdIndex>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> (Vec<Neighbor>, KernelStats) {
    stackfree_query_traced(tree, q, k, cfg, opts, &mut NoopSink)
}

/// [`stackfree_query`] with every metering call mirrored into `sink`; results
/// and counters are bit-identical to the untraced run.
pub fn stackfree_query_traced<T: ImplicitKdIndex>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    sink: &mut dyn TraceSink,
) -> (Vec<Neighbor>, KernelStats) {
    stackfree_try_query(tree, q, k, cfg, opts, None, sink)
        .unwrap_or_else(|e| panic!("stack-free kernel failed on a trusted tree: {e}"))
}

/// The hardened stack-free kernel: typed errors instead of panics or hangs
/// under corruption or injected device faults. Bit-identical to
/// [`stackfree_query`] with `faults: None` on a valid tree.
#[allow(clippy::too_many_arguments)]
pub fn stackfree_try_query<T: ImplicitKdIndex>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    faults: Option<FaultState>,
    sink: &mut dyn TraceSink,
) -> Result<(Vec<Neighbor>, KernelStats), KernelError> {
    assert_eq!(q.len(), tree.dims(), "query dimensionality mismatch");
    assert!(k >= 1, "k must be at least 1");
    super::with_scratch(tree.dims(), opts.lanes, |scratch| {
        match effective_metering(opts, &faults) {
            Metering::Simulated => {
                stackfree_try_query_with::<T, true>(tree, q, k, cfg, opts, faults, sink, scratch)
            }
            Metering::Off => {
                stackfree_try_query_with::<T, false>(tree, q, k, cfg, opts, faults, sink, scratch)
            }
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn stackfree_try_query_with<T: ImplicitKdIndex, const M: bool>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    faults: Option<FaultState>,
    sink: &mut dyn TraceSink,
    scratch: &mut Scratch,
) -> Result<(Vec<Neighbor>, KernelStats), KernelError> {
    let mut block = super::kernel_block::<M>(opts, cfg, sink);
    block.set_faults(faults);
    let mut budget = Budget::for_tree(tree);
    // The whole traversal state: two registers. The only shared memory is the
    // k-best list (policy-dependent) plus one word per thread.
    let static_smem = block.threads() as u64 * 4;
    block
        .reserve_shared(static_smem, cfg.smem_per_sm)
        .map_err(|needed| KernelError::SmemOverflow { needed, limit: cfg.smem_per_sm })?;
    let mut list = GpuKnnList::new(k, opts.smem_policy, &mut block, cfg.smem_per_sm);

    let root = checked_root(tree)?;
    let len = tree.num_nodes() as u64;
    let dc = dist_cost(tree.dims());
    let mut curr = root;
    let mut prev = u32::MAX; // the root's "parent": first arrival is from above
    block.set_phase(Phase::Descend);
    while curr != u32::MAX {
        budget.tick(&block)?;
        let parent = tree.parent(curr);
        let pos = tree.node_point(curr);
        if pos >= tree.num_points() {
            return Err(KernelError::LinkOutOfBounds {
                link: "node_point",
                node: curr,
                target: pos as u64,
                limit: tree.num_points() as u64,
            });
        }
        let kind = if tree.is_leaf(curr) { NodeKind::Leaf } else { NodeKind::Internal };
        // Fetch the node — which *is* its point entry (coords + id).
        block.visit_node(tree.node_depth(curr), kind);
        block.load_global(tree.point_entry_bytes());
        let p = tree.point(pos);

        // Splitting-plane gap, re-derived on every arrival: no per-level state
        // survives an upward return, so returning visits recompute the branch
        // they took. The computed gap passes through the fault injector like
        // every loaded bound (identity and unmetered without a fault state).
        let d = tree.split_dim(curr);
        debug_assert!(d < q.len());
        block.scalar(2);
        let mut gap = scratch.dk.plane_gap(q[d], p[d]);
        if block.has_faults() {
            gap = block.fault_f32(gap);
        }
        let close = 2 * curr as u64 + if gap <= 0.0 { 1 } else { 2 };
        let far = 2 * curr as u64 + if gap <= 0.0 { 2 } else { 1 };

        let from_parent = prev == parent;
        if from_parent {
            // First arrival: offer the node's own point (every node holds
            // exactly one, internal nodes included).
            block.par_for(1, dc, |_| {});
            let mut pd = scratch.dk.dist(q, p);
            if block.has_faults() {
                pd = block.fault_f32(pd);
            }
            block.set_phase(Phase::ResultMerge);
            list.offer(&mut block, pd, tree.point_id(pos));
        }

        // The three-way successor rule. `plane_in_range` is strict: a far
        // subtree whose plane sits exactly at the k-th distance cannot
        // improve the list, matching the oracle's tie behavior.
        block.scalar(1);
        let next = if from_parent {
            if close < len {
                close as u32
            } else if far < len && psb_geom::plane_in_range(gap, list.bound()) {
                far as u32
            } else {
                parent
            }
        } else if prev as u64 == close {
            if far < len && psb_geom::plane_in_range(gap, list.bound()) {
                far as u32
            } else {
                parent
            }
        } else {
            parent
        };
        block.set_phase(if next == parent { Phase::Backtrack } else { Phase::Descend });
        if next == parent {
            block.backtrack(1);
        }
        prev = curr;
        curr = next;
    }

    // Final poll: a fault on the last node processed would otherwise slip
    // past the loop-head checks and reach the caller as a silent result.
    if let Some(fault) = block.device_fault() {
        return Err(fault.into());
    }
    Ok((list.into_sorted(), block.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::brute::brute_index_query;
    use psb_data::{sample_queries, ClusteredSpec, UniformSpec};
    use psb_geom::PointSet;

    /// A minimal implicit kd-tree over a PointSet already in heap order, for
    /// in-crate tests (the real family lives in `psb-kdtree`; the golden
    /// parity suite exercises it end to end).
    struct MiniLb {
        points: PointSet,
        ids: Vec<u32>,
    }

    impl MiniLb {
        /// Left-balanced build, mirroring `psb_kdtree::LbKdTree` (kept tiny
        /// and local so psb-core's own tests need no reverse dependency).
        fn build(points: &PointSet) -> Self {
            fn left_size(n: usize) -> usize {
                let h = n.ilog2();
                let last = n - ((1usize << h) - 1);
                let half = 1usize << (h - 1);
                (half - 1) + last.min(half)
            }
            fn rec(ps: &PointSet, idx: &mut [u32], node: usize, depth: usize, order: &mut [u32]) {
                match idx.len() {
                    0 => return,
                    1 => {
                        order[node] = idx[0];
                        return;
                    }
                    _ => {}
                }
                let d = depth % ps.dims();
                let l = left_size(idx.len());
                idx.select_nth_unstable_by(l, |&a, &b| {
                    ps.point(a as usize)[d].total_cmp(&ps.point(b as usize)[d]).then(a.cmp(&b))
                });
                order[node] = idx[l];
                let (lo, rest) = idx.split_at_mut(l);
                rec(ps, lo, 2 * node + 1, depth + 1, order);
                rec(ps, &mut rest[1..], 2 * node + 2, depth + 1, order);
            }
            let n = points.len();
            let mut idx: Vec<u32> = (0..n as u32).collect();
            let mut order = vec![0u32; n];
            rec(points, &mut idx, 0, 0, &mut order);
            MiniLb { points: points.gather(&order), ids: order }
        }
    }

    impl crate::index::GpuIndex for MiniLb {
        fn dims(&self) -> usize {
            self.points.dims()
        }
        fn degree(&self) -> usize {
            2
        }
        fn root(&self) -> u32 {
            0
        }
        fn is_leaf(&self, n: u32) -> bool {
            2 * n as usize + 1 >= self.points.len()
        }
        fn children(&self, n: u32) -> std::ops::Range<u32> {
            let len = self.points.len() as u32;
            (2 * n + 1).min(len)..(2 * n + 3).min(len)
        }
        fn parent(&self, n: u32) -> u32 {
            if n == 0 {
                u32::MAX
            } else {
                (n - 1) >> 1
            }
        }
        fn leaf_points(&self, n: u32) -> std::ops::Range<usize> {
            n as usize..n as usize + 1
        }
        fn point(&self, pos: usize) -> &[f32] {
            self.points.point(pos)
        }
        fn point_id(&self, pos: usize) -> u32 {
            self.ids[pos]
        }
        fn leaf_id(&self, n: u32) -> u32 {
            n - self.points.len() as u32 / 2
        }
        fn leaf_node_of(&self, l: u32) -> u32 {
            l + self.points.len() as u32 / 2
        }
        fn num_leaves(&self) -> usize {
            self.points.len().div_ceil(2)
        }
        fn num_nodes(&self) -> usize {
            self.points.len()
        }
        fn num_points(&self) -> usize {
            self.points.len()
        }
        fn subtree_max_leaf(&self, _n: u32) -> u32 {
            0
        }
        fn rope(&self, _n: u32) -> u32 {
            crate::index::NO_ROPE
        }
        fn node_depth(&self, n: u32) -> u32 {
            31 - (n + 1).leading_zeros()
        }
        fn index_bytes(&self) -> u64 {
            self.points.len() as u64 * self.point_entry_bytes()
        }
        fn internal_node_bytes(&self, _n: u32) -> u64 {
            self.point_entry_bytes()
        }
        fn leaf_node_bytes(&self, _n: u32) -> u64 {
            self.point_entry_bytes()
        }
        fn child_entry_bytes(&self) -> u64 {
            self.point_entry_bytes()
        }
        fn point_entry_bytes(&self) -> u64 {
            self.points.dims() as u64 * 4 + 4
        }
        fn child_min_max(&self, _c: u32, _q: &[f32], _with_max: bool) -> (f32, f32) {
            panic!("implicit kd-tree has no bounding volumes")
        }
        fn child_eval_cost(&self, _with_max: bool) -> u64 {
            1
        }
        fn child_anchor_dist(&self, c: u32, q: &[f32]) -> f32 {
            psb_geom::dist(q, self.points.point(c as usize))
        }
    }

    impl ImplicitKdIndex for MiniLb {
        fn split_dim(&self, n: u32) -> usize {
            (31 - (n + 1).leading_zeros()) as usize % self.points.dims()
        }
    }

    #[test]
    fn exact_against_brute_oracle_bitwise() {
        for dims in [2usize, 3, 8] {
            let ps = ClusteredSpec {
                clusters: 5,
                points_per_cluster: 300,
                dims,
                sigma: 120.0,
                seed: 101,
            }
            .generate();
            let t = MiniLb::build(&ps);
            let cfg = DeviceConfig::k40();
            let opts = KernelOptions::default();
            for q in sample_queries(&ps, 12, 0.01, 102).iter() {
                let (got, _) = stackfree_query(&t, q, 10, &cfg, &opts);
                let (want, _) = brute_index_query(&t, q, 10, &cfg, &opts);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.dist.to_bits(), w.dist.to_bits(), "dims {dims}");
                    assert_eq!(g.id, w.id, "dims {dims}");
                }
            }
        }
    }

    #[test]
    fn tiny_trees_are_exact() {
        for n in [1usize, 2, 3, 4, 5, 7, 8] {
            let ps = UniformSpec { len: n, dims: 2, seed: 41 + n as u64 }.generate();
            let t = MiniLb::build(&ps);
            let cfg = DeviceConfig::k40();
            let opts = KernelOptions::default();
            let q = vec![250.0f32; 2];
            let k = n.min(3);
            let (got, _) = stackfree_query(&t, &q, k, &cfg, &opts);
            let (want, _) = brute_index_query(&t, &q, k, &cfg, &opts);
            assert_eq!(got.len(), want.len(), "n={n}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.dist.to_bits(), w.dist.to_bits(), "n={n}");
                assert_eq!(g.id, w.id, "n={n}");
            }
        }
    }

    #[test]
    fn metering_off_is_bit_identical_and_unmetered() {
        let ps =
            ClusteredSpec { clusters: 4, points_per_cluster: 250, dims: 4, sigma: 90.0, seed: 103 }
                .generate();
        let t = MiniLb::build(&ps);
        let cfg = DeviceConfig::k40();
        let metered = KernelOptions::default();
        let off = KernelOptions { metering: Metering::Off, ..KernelOptions::default() };
        for q in sample_queries(&ps, 8, 0.01, 104).iter() {
            let (a, sa) = stackfree_query(&t, q, 6, &cfg, &metered);
            let (b, sb) = stackfree_query(&t, q, 6, &cfg, &off);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                assert_eq!(x.id, y.id);
            }
            assert!(sa.nodes_visited > 0);
            assert_eq!(sb.nodes_visited, 0, "fast path must not account");
        }
    }

    #[test]
    fn visits_far_fewer_nodes_than_the_whole_tree() {
        // On clustered data the plane test prunes most of the tree; the
        // counter proves the kernel is a traversal, not a disguised scan.
        let ps =
            ClusteredSpec { clusters: 8, points_per_cluster: 500, dims: 3, sigma: 40.0, seed: 105 }
                .generate();
        let t = MiniLb::build(&ps);
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let q = sample_queries(&ps, 1, 0.005, 106);
        let (_, stats) = stackfree_query(&t, q.point(0), 4, &cfg, &opts);
        assert!(
            stats.nodes_visited < ps.len() as u64 / 2,
            "visited {} of {}",
            stats.nodes_visited,
            ps.len()
        );
        assert!(stats.backtracks > 0, "must climb through parents");
    }
}
