//! GPU brute-force kNN scan — the index-free baseline (Fig. 7/8/9).
//!
//! One block per query streams the entire point array through shared memory in
//! thread-sized tiles: a coalesced tile load, a data-parallel distance sweep,
//! then serialized k-best updates for the improving candidates. This is the
//! structure of the brute-force GPU kNN literature the paper cites ([4]–[9]):
//! perfect memory behaviour, zero pruning.

use psb_geom::{DistKernel, PointSet};
use psb_gpu::{Block, DeviceConfig, FaultState, KernelStats, NoopSink, Phase, TraceSink};
use psb_sstree::Neighbor;

use crate::dist_cost;
use crate::error::KernelError;
use crate::index::GpuIndex;
use crate::kernels::{effective_metering, Budget};
use crate::knnlist::GpuKnnList;
use crate::options::{KernelOptions, Metering};

/// Runs one brute-force query over the raw point set.
///
/// Trusted entry point: panics on a [`KernelError`]. Use [`brute_try_query`]
/// to handle injected faults or an unlaunchable tile size.
pub fn brute_query(
    points: &PointSet,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> (Vec<Neighbor>, KernelStats) {
    brute_query_traced(points, q, k, cfg, opts, &mut NoopSink)
}

/// [`brute_query`] with every metering call mirrored into `sink`; results and
/// counters are bit-identical to the untraced run.
pub fn brute_query_traced(
    points: &PointSet,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    sink: &mut dyn TraceSink,
) -> (Vec<Neighbor>, KernelStats) {
    brute_try_query(points, q, k, cfg, opts, None, sink)
        .unwrap_or_else(|e| panic!("brute-force kernel failed: {e}"))
}

/// The hardened brute-force kernel: typed errors instead of panics under
/// injected device faults or an oversized tile. Bit-identical to the original
/// with `faults: None`.
pub fn brute_try_query(
    points: &PointSet,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    faults: Option<FaultState>,
    sink: &mut dyn TraceSink,
) -> Result<(Vec<Neighbor>, KernelStats), KernelError> {
    assert_eq!(q.len(), points.dims(), "query dimensionality mismatch");
    assert!(k >= 1, "k must be at least 1");
    assert!(!points.is_empty(), "brute-force scan over zero points");
    super::with_scratch(points.dims(), opts.lanes, |scratch| {
        match effective_metering(opts, &faults) {
            Metering::Simulated => {
                brute_try_query_with::<true>(points, q, k, cfg, opts, faults, sink, scratch)
            }
            Metering::Off => {
                brute_try_query_with::<false>(points, q, k, cfg, opts, faults, sink, scratch)
            }
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn brute_try_query_with<const M: bool>(
    points: &PointSet,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    faults: Option<FaultState>,
    sink: &mut dyn TraceSink,
    scratch: &mut super::Scratch,
) -> Result<(Vec<Neighbor>, KernelStats), KernelError> {
    let mut block = super::kernel_block::<M>(opts, cfg, sink);
    block.set_faults(faults);
    let mut budget = Budget::for_scan(points.len());
    let tile = block.threads() as usize;
    // Shared memory: the staged tile plus the k-best list.
    let tile_bytes = (tile * points.dims() * 4) as u64;
    block
        .reserve_shared(tile_bytes, cfg.smem_per_sm)
        .map_err(|needed| KernelError::SmemOverflow { needed, limit: cfg.smem_per_sm })?;
    let mut list = GpuKnnList::new(k, opts.smem_policy, &mut block, cfg.smem_per_sm);

    let dims = points.dims();
    let dc = dist_cost(dims);
    let dk = scratch.dk;
    let mut start = 0usize;
    while start < points.len() {
        budget.tick(&block)?;
        // Tile load + distance sweep are the scan; the k-best updates merge.
        block.set_phase(Phase::LeafScan);
        let len = tile.min(points.len() - start);
        block.load_global_stream((len * dims * 4) as u64);
        scratch.leaf.clear();
        block.par_for(len, dc, |_| {});
        // The tile rows are one contiguous run of the flat point array:
        // stream them through the batched one-query-vs-many-rows form of the
        // dimension-specialized kernel (bit-identical to per-row calls).
        let rows = &points.as_flat()[start * dims..(start + len) * dims];
        scratch.sweep.tmp.clear();
        dk.dist_rows(q, rows, &mut scratch.sweep.tmp);
        for (i, &d) in scratch.sweep.tmp.iter().enumerate() {
            scratch.leaf.push((d, (start + i) as u32));
        }
        if block.has_faults() {
            for entry in &mut scratch.leaf {
                entry.0 = block.fault_f32(entry.0);
            }
        }
        block.set_phase(Phase::ResultMerge);
        for &(d, id) in &scratch.leaf {
            list.offer(&mut block, d, id);
        }
        block.sync();
        start += len;
    }

    // Final poll: a fault in the last tile would otherwise slip past the
    // loop-head checks and reach the caller as a silent result.
    if let Some(fault) = block.device_fault() {
        return Err(fault.into());
    }
    Ok((list.into_sorted(), block.finish()))
}

/// Pick a tile size (in points) whose staging buffer fits in shared memory.
/// Starts at the block's thread count and halves until it fits — the
/// fallback's launchability must not depend on the query's dimensionality.
fn fallback_tile(threads: usize, dims: usize, smem_per_sm: u64) -> usize {
    let mut tile = threads.max(1);
    while tile > 1 && (tile * dims * 4) as u64 > smem_per_sm {
        tile /= 2;
    }
    tile
}

/// Exact brute-force kNN over an index's reordered point array — the last
/// rung of the engine's recovery ladder. Runs with no fault state attached
/// and clamps its tile to fit shared memory, so it cannot fail: it only
/// reads the flat point array and never follows a structural link, which is
/// what makes it safe to run on a tree whose links are suspect.
pub fn brute_index_query<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> (Vec<Neighbor>, KernelStats) {
    assert_eq!(q.len(), tree.dims(), "query dimensionality mismatch");
    assert!(k >= 1, "k must be at least 1");
    assert!(tree.num_points() > 0, "brute-force fallback over zero points");
    // No fault state here (the fallback never carries one), so the metering
    // option applies directly.
    match opts.metering {
        Metering::Simulated => brute_index_query_with::<T, true>(tree, q, k, cfg, opts),
        Metering::Off => brute_index_query_with::<T, false>(tree, q, k, cfg, opts),
    }
}

fn brute_index_query_with<T: GpuIndex, const M: bool>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> (Vec<Neighbor>, KernelStats) {
    let n = tree.num_points();
    let mut block: Block<'static, M> = Block::new(opts.threads_per_block, cfg);
    let tile = fallback_tile(block.threads() as usize, tree.dims(), cfg.smem_per_sm);
    let tile_bytes = (tile * tree.dims() * 4) as u64;
    // fallback_tile guarantees this fits (down to a single point per tile).
    let _ = block.reserve_shared(tile_bytes, cfg.smem_per_sm);
    let mut list = GpuKnnList::new(k, opts.smem_policy, &mut block, cfg.smem_per_sm);

    let dc = dist_cost(tree.dims());
    // Resolved once per launch, not per point: the fallback scans the whole
    // dataset, so per-call dispatch would dominate small dims.
    let dk = DistKernel::for_dims_lanes(tree.dims(), opts.lanes);
    let mut dists: Vec<(f32, u32)> = Vec::with_capacity(tile);
    let mut start = 0usize;
    while start < n {
        block.set_phase(Phase::LeafScan);
        let len = tile.min(n - start);
        block.load_global_stream((len * tree.dims() * 4) as u64);
        dists.clear();
        block.par_for(len, dc, |i| {
            let p = start + i;
            dists.push((dk.dist(q, tree.point(p)), tree.point_id(p)));
        });
        block.set_phase(Phase::ResultMerge);
        for &(d, id) in &dists {
            list.offer(&mut block, d, id);
        }
        block.sync();
        start += len;
    }
    (list.into_sorted(), block.finish())
}

/// Exact brute-force range scan over an index's point array — the recovery
/// fallback for [`range_try_query`](super::range::range_try_query). Same
/// no-links, no-faults, clamped-tile guarantees as [`brute_index_query`].
pub fn brute_index_range<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    radius: f32,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> (Vec<Neighbor>, KernelStats) {
    assert!(radius >= 0.0, "radius must be non-negative");
    assert_eq!(q.len(), tree.dims(), "query dimensionality mismatch");
    match opts.metering {
        Metering::Simulated => brute_index_range_with::<T, true>(tree, q, radius, cfg, opts),
        Metering::Off => brute_index_range_with::<T, false>(tree, q, radius, cfg, opts),
    }
}

fn brute_index_range_with<T: GpuIndex, const M: bool>(
    tree: &T,
    q: &[f32],
    radius: f32,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> (Vec<Neighbor>, KernelStats) {
    let n = tree.num_points();
    let mut block: Block<'static, M> = Block::new(opts.threads_per_block, cfg);
    let tile = fallback_tile(block.threads() as usize, tree.dims(), cfg.smem_per_sm);
    let tile_bytes = (tile * tree.dims() * 4) as u64;
    let _ = block.reserve_shared(tile_bytes, cfg.smem_per_sm);

    let dc = dist_cost(tree.dims());
    let dk = DistKernel::for_dims_lanes(tree.dims(), opts.lanes);
    let mut out: Vec<Neighbor> = Vec::new();
    let mut start = 0usize;
    while start < n {
        block.set_phase(Phase::LeafScan);
        let len = tile.min(n - start);
        block.load_global_stream((len * tree.dims() * 4) as u64);
        let mut hits = 0u64;
        block.par_for(len, dc, |i| {
            let p = start + i;
            let d = dk.dist(q, tree.point(p));
            if d <= radius {
                out.push(Neighbor { dist: d, id: tree.point_id(p) });
                hits += 1;
            }
        });
        block.set_phase(Phase::ResultMerge);
        if hits > 0 {
            block.scalar(2);
            block.load_global_stream(hits * 8);
        }
        block.sync();
        start += len;
    }
    out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    (out, block.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_data::{sample_queries, ClusteredSpec};
    use psb_sstree::linear_knn;

    fn dataset() -> PointSet {
        ClusteredSpec { clusters: 4, points_per_cluster: 300, dims: 6, sigma: 90.0, seed: 17 }
            .generate()
    }

    #[test]
    fn matches_linear_scan_exactly() {
        let ps = dataset();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        for q in sample_queries(&ps, 10, 0.01, 31).iter() {
            let (got, _) = brute_query(&ps, q, 12, &cfg, &opts);
            let want = linear_knn(&ps, q, 12);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.id, w.id);
                assert!((g.dist - w.dist).abs() <= w.dist.max(1.0) * 1e-5);
            }
        }
    }

    #[test]
    fn reads_the_whole_dataset() {
        let ps = dataset();
        let cfg = DeviceConfig::k40();
        let (_, stats) = brute_query(&ps, ps.point(0), 4, &cfg, &KernelOptions::default());
        assert_eq!(stats.global_bytes, ps.bytes());
    }

    #[test]
    fn full_warp_efficiency_on_multiple_of_tile() {
        // 1200 points, 32-thread tiles: every sweep is full except metering of
        // list updates; efficiency stays high but below 1.0 (serial updates).
        let ps = dataset();
        let cfg = DeviceConfig::k40();
        let (_, stats) = brute_query(&ps, ps.point(5), 4, &cfg, &KernelOptions::default());
        let eff = stats.warp_efficiency();
        assert!(eff > 0.8, "brute force should be near-coherent, got {eff}");
    }

    #[test]
    fn k_larger_than_dataset() {
        let mut ps = PointSet::new(2);
        for i in 0..7 {
            ps.push(&[i as f32, 1.0]);
        }
        let cfg = DeviceConfig::k40();
        let (got, _) = brute_query(&ps, &[0.0, 0.0], 100, &cfg, &KernelOptions::default());
        assert_eq!(got.len(), 7);
    }
}
