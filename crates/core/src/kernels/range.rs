//! Data-parallel fixed-radius range query on the simulated GPU.
//!
//! Range queries are the workload of the MPRS system the paper cites as prior
//! work (§VI, Kim et al.): "the MPRS algorithm targets low dimensional range
//! query processing". The kernel here shows that PSB's machinery — leftmost
//! descent under a bound, linear sibling-leaf scanning, `subtreeMaxLeafId`
//! cursor — applies directly when the pruning distance is *fixed* (`radius`)
//! instead of shrinking: the traversal degenerates to a single left-to-right
//! sweep over the in-range leaves with no re-tightening, which is exactly why
//! the paper's design generalizes beyond kNN.
//!
//! Result rows are written to global memory (metered as streaming writes, the
//! way a real kernel would append via an atomic cursor into an output buffer).

use psb_geom::dist;
use psb_gpu::{Block, DeviceConfig, KernelStats, NoopSink, Phase, TraceSink};
use psb_sstree::Neighbor;

use crate::index::GpuIndex;

use super::{child_distances, fetch_internal, fetch_leaf, Scratch};
use crate::dist_cost;
use crate::options::KernelOptions;

/// Runs one range query on a simulated block; returns the points within
/// `radius` of `q`, ascending by distance, plus the block counters.
pub fn range_query_gpu<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    radius: f32,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> (Vec<Neighbor>, KernelStats) {
    range_query_gpu_traced(tree, q, radius, cfg, opts, &mut NoopSink)
}

/// [`range_query_gpu`] with every metering call mirrored into `sink`; results
/// and counters are bit-identical to the untraced run.
pub fn range_query_gpu_traced<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    radius: f32,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    sink: &mut dyn TraceSink,
) -> (Vec<Neighbor>, KernelStats) {
    assert!(radius >= 0.0, "radius must be non-negative");
    assert_eq!(q.len(), tree.dims(), "query dimensionality mismatch");
    let mut block = Block::with_sink(opts.threads_per_block, cfg, sink);
    let static_smem = tree.degree() as u64 * 4 + opts.threads_per_block as u64 * 4;
    block
        .reserve_shared(static_smem, cfg.smem_per_sm)
        .expect("node-degree scratch must fit in shared memory");
    let mut scratch = Scratch::default();
    let mut out: Vec<Neighbor> = Vec::new();
    let dc = dist_cost(tree.dims());

    let last_leaf = (tree.num_leaves() - 1) as u32;
    let mut visited: i64 = -1;
    let mut n = tree.root();
    let mut level = 0u32;
    'sweep: loop {
        while !tree.is_leaf(n) {
            block.set_phase(Phase::Descend);
            fetch_internal(&mut block, tree, n, opts.layout, level);
            child_distances(&mut block, tree, n, q, false, &mut scratch);
            let kids = tree.children(n);
            block.par_for(kids.len(), 1, |_| {});
            block.par_reduce(kids.len(), 1);
            block.scalar(2);
            let mut chosen = None;
            for (i, c) in kids.enumerate() {
                if scratch.min_d[i] <= radius && tree.subtree_max_leaf(c) as i64 > visited {
                    chosen = Some(c);
                    break;
                }
            }
            match chosen {
                Some(c) => {
                    n = c;
                    level += 1;
                }
                None => {
                    visited = visited.max(tree.subtree_max_leaf(n) as i64);
                    if n == tree.root() {
                        break 'sweep;
                    }
                    block.set_phase(Phase::Backtrack);
                    block.backtrack(level);
                    block.scalar(1);
                    n = tree.parent(n);
                    level -= 1;
                }
            }
        }

        // Leaf chain: with a fixed bound, scan rightward while leaves keep
        // producing hits (in-range leaves cluster together on the curve).
        let mut via_sibling = false;
        loop {
            block.set_phase(Phase::LeafScan);
            fetch_leaf(&mut block, tree, n, opts.layout, via_sibling, level);
            let range = tree.leaf_points(n);
            let start = range.start;
            let len = range.len();
            scratch.leaf.clear();
            block.par_for(len, dc, |i| {
                let p = start + i;
                let d = dist(q, tree.point(p));
                scratch.leaf.push((d, tree.point_id(p)));
            });
            block.set_phase(Phase::ResultMerge);
            let mut hits = 0u64;
            for &(d, id) in &scratch.leaf {
                if d <= radius {
                    out.push(Neighbor { dist: d, id });
                    hits += 1;
                }
            }
            if hits > 0 {
                // Append to the global output buffer (atomic cursor + rows).
                block.scalar(2);
                block.load_global_stream(hits * 8);
            }
            let lid = tree.leaf_id(n);
            visited = lid as i64;
            if opts.leaf_scan && hits > 0 && lid < last_leaf {
                block.set_phase(Phase::LeafScan);
                block.scalar(1);
                n = tree.leaf_node_of(lid + 1);
                via_sibling = true;
            } else if n == tree.root() {
                break 'sweep;
            } else {
                block.set_phase(Phase::Backtrack);
                block.backtrack(level);
                block.scalar(1);
                n = tree.parent(n);
                level -= 1;
                break;
            }
        }
    }

    out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    (out, block.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_data::{sample_queries, ClusteredSpec};
    use psb_geom::PointSet;
    use psb_sstree::{build, search::linear_range, BuildMethod, SsTree};

    fn setup() -> (PointSet, SsTree) {
        let ps = ClusteredSpec {
            clusters: 6,
            points_per_cluster: 300,
            dims: 4,
            sigma: 120.0,
            seed: 141,
        }
        .generate();
        let tree = build(&ps, 16, &BuildMethod::Hilbert);
        (ps, tree)
    }

    #[test]
    fn matches_linear_filter() {
        let (ps, tree) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        for q in sample_queries(&ps, 12, 0.01, 142).iter() {
            for radius in [10.0f32, 200.0, 2000.0] {
                let (got, _) = range_query_gpu(&tree, q, radius, &cfg, &opts);
                let want = linear_range(&ps, q, radius);
                assert_eq!(got.len(), want.len(), "radius {radius}");
                for (g, w) in got.iter().zip(&want) {
                    assert!((g.dist - w.dist).abs() <= w.dist.max(1.0) * 1e-4);
                }
            }
        }
    }

    #[test]
    fn empty_result_for_distant_query() {
        let (_, tree) = setup();
        let cfg = DeviceConfig::k40();
        let q = vec![-1e6; 4];
        let (got, stats) = range_query_gpu(&tree, &q, 1.0, &cfg, &KernelOptions::default());
        assert!(got.is_empty());
        // One root fetch plus the pruned descent: far fewer bytes than the tree.
        assert!(stats.global_bytes < tree.total_bytes() / 4);
    }

    #[test]
    fn huge_radius_returns_everything() {
        let (ps, tree) = setup();
        let cfg = DeviceConfig::k40();
        let q = ps.point(0).to_vec();
        let (got, _) = range_query_gpu(&tree, &q, 1e9, &cfg, &KernelOptions::default());
        assert_eq!(got.len(), ps.len());
    }

    #[test]
    fn exact_without_leaf_scan() {
        let (ps, tree) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions { leaf_scan: false, ..Default::default() };
        let q = sample_queries(&ps, 4, 0.01, 143);
        for qp in q.iter() {
            let (got, _) = range_query_gpu(&tree, qp, 500.0, &cfg, &opts);
            let want = linear_range(&ps, qp, 500.0);
            assert_eq!(got.len(), want.len());
        }
    }
}
