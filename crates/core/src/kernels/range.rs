//! Data-parallel fixed-radius range query on the simulated GPU.
//!
//! Range queries are the workload of the MPRS system the paper cites as prior
//! work (§VI, Kim et al.): "the MPRS algorithm targets low dimensional range
//! query processing". The kernel here shows that PSB's machinery — leftmost
//! descent under a bound, linear sibling-leaf scanning, `subtreeMaxLeafId`
//! cursor — applies directly when the pruning distance is *fixed* (`radius`)
//! instead of shrinking: the traversal degenerates to a single left-to-right
//! sweep over the in-range leaves with no re-tightening, which is exactly why
//! the paper's design generalizes beyond kNN.
//!
//! Result rows are written to global memory (metered as streaming writes, the
//! way a real kernel would append via an atomic cursor into an output buffer).

use psb_gpu::{Block, DeviceConfig, FaultState, KernelStats, NodeKind, NoopSink, Phase, TraceSink};
use psb_sstree::Neighbor;

use crate::error::KernelError;
use crate::index::{GpuIndex, NO_ROPE};

use super::{
    checked_children, checked_leaf_id, checked_leaf_points, checked_node, checked_root,
    checked_rope, child_distances, effective_metering, fetch_internal, fetch_leaf, node_min_dist,
    Budget, Scratch,
};
use crate::dist_cost;
use crate::options::{KernelOptions, Metering};

/// Runs one range query on a simulated block; returns the points within
/// `radius` of `q`, ascending by distance, plus the block counters.
///
/// Trusted-tree entry point: panics on a [`KernelError`]. Use
/// [`range_try_query`] to handle corruption or injected faults.
pub fn range_query_gpu<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    radius: f32,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> (Vec<Neighbor>, KernelStats) {
    range_query_gpu_traced(tree, q, radius, cfg, opts, &mut NoopSink)
}

/// [`range_query_gpu`] with every metering call mirrored into `sink`; results
/// and counters are bit-identical to the untraced run.
pub fn range_query_gpu_traced<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    radius: f32,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    sink: &mut dyn TraceSink,
) -> (Vec<Neighbor>, KernelStats) {
    range_try_query(tree, q, radius, cfg, opts, None, sink)
        .unwrap_or_else(|e| panic!("range kernel failed on a trusted tree: {e}"))
}

/// The hardened range kernel: typed errors instead of panics or hangs under
/// corruption or injected device faults. Bit-identical to the original with
/// `faults: None` on a valid tree.
#[allow(clippy::too_many_arguments)]
pub fn range_try_query<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    radius: f32,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    faults: Option<FaultState>,
    sink: &mut dyn TraceSink,
) -> Result<(Vec<Neighbor>, KernelStats), KernelError> {
    assert!(radius >= 0.0, "radius must be non-negative");
    assert_eq!(q.len(), tree.dims(), "query dimensionality mismatch");
    super::with_scratch(tree.dims(), opts.lanes, |scratch| {
        match effective_metering(opts, &faults) {
            Metering::Simulated => {
                range_try_query_with::<T, true>(tree, q, radius, cfg, opts, faults, sink, scratch)
            }
            Metering::Off => {
                range_try_query_with::<T, false>(tree, q, radius, cfg, opts, faults, sink, scratch)
            }
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn range_try_query_with<T: GpuIndex, const M: bool>(
    tree: &T,
    q: &[f32],
    radius: f32,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    faults: Option<FaultState>,
    sink: &mut dyn TraceSink,
    scratch: &mut Scratch,
) -> Result<(Vec<Neighbor>, KernelStats), KernelError> {
    let mut block = super::kernel_block::<M>(opts, cfg, sink);
    block.set_faults(faults);
    let mut budget = Budget::for_tree(tree);
    let static_smem = tree.degree() as u64 * 4 + block.threads() as u64 * 4;
    block
        .reserve_shared(static_smem, cfg.smem_per_sm)
        .map_err(|needed| KernelError::SmemOverflow { needed, limit: cfg.smem_per_sm })?;
    let mut out: Vec<Neighbor> = Vec::new();
    let dc = dist_cost(tree.dims());

    if opts.rope {
        return range_rope_with(block, budget, tree, q, radius, opts, scratch, out);
    }

    let last_leaf = (tree.num_leaves() - 1) as u32;
    let mut visited: i64 = -1;
    let mut n = checked_root(tree)?;
    let mut level = 0u32;
    'sweep: loop {
        while !tree.is_leaf(n) {
            budget.tick(&block)?;
            block.set_phase(Phase::Descend);
            let kids = checked_children(tree, n)?;
            fetch_internal(&mut block, tree, n, opts.layout, level);
            child_distances(&mut block, tree, n, q, false, false, scratch);
            block.par_for(kids.len(), 1, |_| {});
            block.par_reduce(kids.len(), 1);
            block.scalar(2);
            let mut chosen = None;
            for (i, c) in kids.clone().enumerate() {
                if scratch.sweep.min_d[i] <= radius && tree.subtree_max_leaf(c) as i64 > visited {
                    chosen = Some(c);
                    break;
                }
            }
            match chosen {
                Some(c) => {
                    n = c;
                    level += 1;
                }
                None => {
                    visited = visited.max(tree.subtree_max_leaf(n) as i64);
                    if n == tree.root() {
                        break 'sweep;
                    }
                    block.set_phase(Phase::Backtrack);
                    block.backtrack(level);
                    block.scalar(1);
                    n = checked_node(tree, "parent", n, tree.parent(n))?;
                    level = level.checked_sub(1).ok_or(KernelError::CorruptNode {
                        node: n,
                        detail: "parent chain deeper than the descent that reached it",
                    })?;
                }
            }
        }

        // Leaf chain: with a fixed bound, scan rightward while leaves keep
        // producing hits (in-range leaves cluster together on the curve).
        let mut via_sibling = false;
        loop {
            budget.tick(&block)?;
            let range = checked_leaf_points(tree, n)?;
            block.set_phase(Phase::LeafScan);
            fetch_leaf(&mut block, tree, n, opts.layout, via_sibling, level);
            let len = range.len();
            scratch.leaf.clear();
            // Metering depends only on (len, dc); the index's leaf sweep
            // streams the packed arena block when attached, else gathers
            // exactly as this loop used to (see `process_leaf`).
            block.par_for(len, dc, |_| {});
            tree.leaf_sweep(n, q, &scratch.dk, &mut scratch.sweep.tmp, &mut scratch.leaf);
            if block.has_faults() {
                for entry in &mut scratch.leaf {
                    entry.0 = block.fault_f32(entry.0);
                }
            }
            block.set_phase(Phase::ResultMerge);
            let mut hits = 0u64;
            for &(d, id) in &scratch.leaf {
                if d <= radius {
                    out.push(Neighbor { dist: d, id });
                    hits += 1;
                }
            }
            if hits > 0 {
                // Append to the global output buffer (atomic cursor + rows).
                block.scalar(2);
                block.load_global_stream(hits * 8);
            }
            let lid = checked_leaf_id(tree, n)?;
            visited = lid as i64;
            if opts.leaf_scan && hits > 0 && lid < last_leaf {
                block.set_phase(Phase::LeafScan);
                block.scalar(1);
                n = checked_node(tree, "leaf_node_of", n, tree.leaf_node_of(lid + 1))?;
                via_sibling = true;
            } else if n == tree.root() {
                break 'sweep;
            } else {
                block.set_phase(Phase::Backtrack);
                block.backtrack(level);
                block.scalar(1);
                n = checked_node(tree, "parent", n, tree.parent(n))?;
                level = level.checked_sub(1).ok_or(KernelError::CorruptNode {
                    node: n,
                    detail: "parent chain deeper than the descent that reached it",
                })?;
                break;
            }
        }
    }

    // Final poll: a fault in the last leaf processed would otherwise slip
    // past the loop-head checks and reach the caller as a silent result.
    if let Some(fault) = block.device_fault() {
        return Err(fault.into());
    }
    out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    Ok((out, block.finish()))
}

/// Rope-mode range sweep (DESIGN.md §18): a single preorder pass with **no**
/// per-level state — no level counter, no parent backtracking, no
/// `visitedLeafId` cursor. Every arriving node evaluates its own volume;
/// qualifying internal nodes fall through to their first child, everything
/// else follows the escape link until it runs off the rightmost spine.
/// Exactness: the node set *entered* is exactly the stacked sweep's (a node
/// is entered iff its volume intersects the range and its ancestors do —
/// `tests/ropes.rs` pins the equivalence), so the same leaves produce the
/// same rows.
#[allow(clippy::too_many_arguments)]
fn range_rope_with<T: GpuIndex, const M: bool>(
    mut block: Block<'_, M>,
    mut budget: Budget,
    tree: &T,
    q: &[f32],
    radius: f32,
    opts: &KernelOptions,
    scratch: &mut Scratch,
    mut out: Vec<Neighbor>,
) -> Result<(Vec<Neighbor>, KernelStats), KernelError> {
    let dc = dist_cost(tree.dims());
    let mut n = checked_root(tree)?;
    loop {
        budget.tick(&block)?;
        block.set_phase(Phase::Descend);
        // The root carries no volume worth testing (it always qualifies);
        // every other arrival fetches and evaluates its own entry.
        let qualifies = n == tree.root() || node_min_dist(&mut block, tree, n, q) <= radius;
        let next = if !qualifies {
            block.set_phase(Phase::Backtrack);
            checked_rope(&mut block, tree, n)?
        } else if tree.is_leaf(n) {
            let range = checked_leaf_points(tree, n)?;
            block.set_phase(Phase::LeafScan);
            fetch_leaf(&mut block, tree, n, opts.layout, false, tree.node_depth(n));
            scratch.leaf.clear();
            block.par_for(range.len(), dc, |_| {});
            tree.leaf_sweep(n, q, &scratch.dk, &mut scratch.sweep.tmp, &mut scratch.leaf);
            if block.has_faults() {
                for entry in &mut scratch.leaf {
                    entry.0 = block.fault_f32(entry.0);
                }
            }
            block.set_phase(Phase::ResultMerge);
            let mut hits = 0u64;
            for &(d, id) in &scratch.leaf {
                if d <= radius {
                    out.push(Neighbor { dist: d, id });
                    hits += 1;
                }
            }
            if hits > 0 {
                block.scalar(2);
                block.load_global_stream(hits * 8);
            }
            block.set_phase(Phase::Backtrack);
            checked_rope(&mut block, tree, n)?
        } else {
            block.visit_node(tree.node_depth(n), NodeKind::Internal);
            checked_children(tree, n)?.start
        };
        if next == NO_ROPE {
            break;
        }
        n = next;
    }

    if let Some(fault) = block.device_fault() {
        return Err(fault.into());
    }
    out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    Ok((out, block.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_data::{sample_queries, ClusteredSpec};
    use psb_geom::PointSet;
    use psb_sstree::{build, search::linear_range, BuildMethod, SsTree};

    fn setup() -> (PointSet, SsTree) {
        let ps = ClusteredSpec {
            clusters: 6,
            points_per_cluster: 300,
            dims: 4,
            sigma: 120.0,
            seed: 141,
        }
        .generate();
        let tree = build(&ps, 16, &BuildMethod::Hilbert);
        (ps, tree)
    }

    #[test]
    fn matches_linear_filter() {
        let (ps, tree) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        for q in sample_queries(&ps, 12, 0.01, 142).iter() {
            for radius in [10.0f32, 200.0, 2000.0] {
                let (got, _) = range_query_gpu(&tree, q, radius, &cfg, &opts);
                let want = linear_range(&ps, q, radius);
                assert_eq!(got.len(), want.len(), "radius {radius}");
                for (g, w) in got.iter().zip(&want) {
                    assert!((g.dist - w.dist).abs() <= w.dist.max(1.0) * 1e-4);
                }
            }
        }
    }

    #[test]
    fn empty_result_for_distant_query() {
        let (_, tree) = setup();
        let cfg = DeviceConfig::k40();
        let q = vec![-1e6; 4];
        let (got, stats) = range_query_gpu(&tree, &q, 1.0, &cfg, &KernelOptions::default());
        assert!(got.is_empty());
        // One root fetch plus the pruned descent: far fewer bytes than the tree.
        assert!(stats.global_bytes < tree.total_bytes() / 4);
    }

    #[test]
    fn huge_radius_returns_everything() {
        let (ps, tree) = setup();
        let cfg = DeviceConfig::k40();
        let q = ps.point(0).to_vec();
        let (got, _) = range_query_gpu(&tree, &q, 1e9, &cfg, &KernelOptions::default());
        assert_eq!(got.len(), ps.len());
    }

    #[test]
    fn rope_mode_is_bit_identical_to_stacked() {
        let (ps, tree) = setup();
        let cfg = DeviceConfig::k40();
        let stacked = KernelOptions::default();
        let rope = KernelOptions { rope: true, ..Default::default() };
        for q in sample_queries(&ps, 10, 0.01, 144).iter() {
            for radius in [10.0f32, 200.0, 2000.0] {
                let (a, _) = range_query_gpu(&tree, q, radius, &cfg, &stacked);
                let (b, sb) = range_query_gpu(&tree, q, radius, &cfg, &rope);
                assert_eq!(a.len(), b.len(), "radius {radius}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                    assert_eq!(x.id, y.id);
                }
                assert_eq!(sb.backtracks, 0, "rope mode carries no parent state");
            }
        }
    }

    #[test]
    fn exact_without_leaf_scan() {
        let (ps, tree) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions { leaf_scan: false, ..Default::default() };
        let q = sample_queries(&ps, 4, 0.01, 143);
        for qp in q.iter() {
            let (got, _) = range_query_gpu(&tree, qp, 500.0, &cfg, &opts);
            let want = linear_range(&ps, qp, 500.0);
            assert_eq!(got.len(), want.len());
        }
    }
}
