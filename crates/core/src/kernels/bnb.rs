//! Classic branch-and-bound kNN on the GPU tree — the paper's main baseline.
//!
//! The traversal is the Roussopoulos et al. algorithm: at every internal node
//! visit children in ascending MINDIST order, pruning those outside the current
//! k-th best distance. Because the GPU has no usable runtime stack, the
//! implementation backtracks through **parent links**, and — as the paper points
//! out (§II-A) — every return to a parent must *re-fetch the node from global
//! memory and re-evaluate its child distances* to find the next-best unvisited
//! child. That repeated work is metered here: an internal node whose `m`
//! children get visited is fetched `m + 1` times.

use psb_gpu::{Block, DeviceConfig, FaultState, KernelStats, NoopSink, Phase, TraceSink};
use psb_sstree::Neighbor;

use crate::error::KernelError;
use crate::index::GpuIndex;

use super::{
    checked_children, checked_root, child_distances, effective_metering, fetch_internal,
    kth_maxdist, process_leaf, Budget, Scratch,
};
use crate::knnlist::GpuKnnList;
use crate::options::{KernelOptions, Metering};

/// Runs one branch-and-bound query on a simulated block.
///
/// Trusted-tree entry point: panics on a [`KernelError`], which a validated
/// tree and a fault-free device can never produce. Use [`bnb_try_query`] to
/// handle corruption or injected faults.
pub fn bnb_query<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> (Vec<Neighbor>, KernelStats) {
    bnb_query_traced(tree, q, k, cfg, opts, &mut NoopSink)
}

/// [`bnb_query`] with every metering call mirrored into `sink`; results and
/// counters are bit-identical to the untraced run.
pub fn bnb_query_traced<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    sink: &mut dyn TraceSink,
) -> (Vec<Neighbor>, KernelStats) {
    bnb_try_query(tree, q, k, cfg, opts, None, sink)
        .unwrap_or_else(|e| panic!("branch-and-bound kernel failed on a trusted tree: {e}"))
}

/// The hardened branch-and-bound kernel: typed errors instead of panics or
/// hangs under corruption or injected device faults. Bit-identical to the
/// original with `faults: None` on a valid tree.
#[allow(clippy::too_many_arguments)]
pub fn bnb_try_query<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    faults: Option<FaultState>,
    sink: &mut dyn TraceSink,
) -> Result<(Vec<Neighbor>, KernelStats), KernelError> {
    assert_eq!(q.len(), tree.dims(), "query dimensionality mismatch");
    assert!(k >= 1, "k must be at least 1");
    super::with_scratch(tree.dims(), opts.lanes, |scratch| {
        match effective_metering(opts, &faults) {
            Metering::Simulated => {
                bnb_try_query_with::<T, true>(tree, q, k, cfg, opts, faults, sink, scratch)
            }
            Metering::Off => {
                bnb_try_query_with::<T, false>(tree, q, k, cfg, opts, faults, sink, scratch)
            }
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn bnb_try_query_with<T: GpuIndex, const M: bool>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    faults: Option<FaultState>,
    sink: &mut dyn TraceSink,
    scratch: &mut Scratch,
) -> Result<(Vec<Neighbor>, KernelStats), KernelError> {
    let mut block = super::kernel_block::<M>(opts, cfg, sink);
    block.set_faults(faults);
    let mut budget = Budget::for_tree(tree);
    let static_smem = 2 * tree.degree() as u64 * 4 + block.threads() as u64 * 4;
    block
        .reserve_shared(static_smem, cfg.smem_per_sm)
        .map_err(|needed| KernelError::SmemOverflow { needed, limit: cfg.smem_per_sm })?;
    let mut list = GpuKnnList::new(k, opts.smem_policy, &mut block, cfg.smem_per_sm);
    let mut pruning = f32::INFINITY;

    let root = checked_root(tree)?;
    visit(tree, root, 0, q, k, opts, &mut block, &mut list, scratch, &mut pruning, &mut budget)?;
    // Final poll: a fault in the last leaf processed would otherwise slip
    // past the loop-head checks and reach the caller as a silent result.
    if let Some(fault) = block.device_fault() {
        return Err(fault.into());
    }
    Ok((list.into_sorted(), block.finish()))
}

#[allow(clippy::too_many_arguments)]
fn visit<T: GpuIndex, const M: bool>(
    tree: &T,
    n: u32,
    level: u32,
    q: &[f32],
    k: usize,
    opts: &KernelOptions,
    block: &mut Block<'_, M>,
    list: &mut GpuKnnList,
    scratch: &mut Scratch,
    pruning: &mut f32,
    budget: &mut Budget,
) -> Result<(), KernelError> {
    budget.tick(block)?;
    // Recursion depth guard: a corrupted child range can form a cycle, and a
    // cycle through `visit` would overflow the host stack long before the
    // step budget triggers. No valid tree is deeper than it has nodes.
    if level as usize > tree.num_nodes() {
        return Err(KernelError::CorruptNode {
            node: n,
            detail: "descent deeper than the node count (structural cycle)",
        });
    }
    if tree.is_leaf(n) {
        process_leaf(block, tree, n, q, list, scratch, opts, false, level)?;
        *pruning = pruning.min(list.bound());
        return Ok(());
    }

    let kids = checked_children(tree, n)?;
    let cnt = kids.len();
    let mut visited = vec![false; cnt];
    let mut first = true;
    loop {
        budget.tick(block)?;
        // (Re-)fetch the node and recompute child distances: with no stack
        // there is nowhere to keep them across the recursive descent. The
        // first fetch is part of the descent; every later one is the cost of
        // parent-link backtracking and is attributed (and counted) as such.
        if first {
            block.set_phase(Phase::Descend);
            first = false;
        } else {
            block.set_phase(Phase::Backtrack);
            block.backtrack(level + 1);
        }
        fetch_internal(block, tree, n, opts.layout, level);
        child_distances(block, tree, n, q, opts.use_minmax_prune, false, scratch);
        if opts.use_minmax_prune && scratch.sweep.max_d.len() >= k {
            let bound = kth_maxdist(block, &scratch.sweep.max_d, k, &mut scratch.kth);
            *pruning = pruning.min(bound);
        }
        // Select the unvisited child with the smallest in-bound MINDIST.
        block.par_reduce(cnt, 2);
        let mut best: Option<(usize, f32)> = None;
        for (i, &d) in scratch.sweep.min_d.iter().enumerate() {
            if visited[i] || d >= *pruning {
                continue;
            }
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        match best {
            None => return Ok(()),
            Some((i, _)) => {
                visited[i] = true;
                visit(
                    tree,
                    kids.start + i as u32,
                    level + 1,
                    q,
                    k,
                    opts,
                    block,
                    list,
                    scratch,
                    pruning,
                    budget,
                )?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::psb::psb_query;
    use psb_data::{sample_queries, ClusteredSpec};
    use psb_geom::PointSet;
    use psb_sstree::{build, linear_knn, BuildMethod, SsTree};

    fn setup(dims: usize, sigma: f32) -> (PointSet, SsTree) {
        let ps = ClusteredSpec { clusters: 5, points_per_cluster: 300, dims, sigma, seed: 13 }
            .generate();
        let tree = build(&ps, 16, &BuildMethod::Hilbert);
        (ps, tree)
    }

    #[test]
    fn exact_against_linear_scan() {
        let (ps, tree) = setup(4, 120.0);
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        for q in sample_queries(&ps, 20, 0.01, 21).iter() {
            let (got, _) = bnb_query(&tree, q, 8, &cfg, &opts);
            let want = linear_knn(&ps, q, 8);
            for (g, w) in got.iter().zip(&want) {
                let scale = w.dist.max(1.0);
                assert!((g.dist - w.dist).abs() <= scale * 1e-4);
            }
        }
    }

    #[test]
    fn matches_psb_result_distances() {
        let (ps, tree) = setup(8, 200.0);
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        for q in sample_queries(&ps, 10, 0.01, 22).iter() {
            let (a, _) = bnb_query(&tree, q, 16, &cfg, &opts);
            let (b, _) = psb_query(&tree, q, 16, &cfg, &opts);
            for (x, y) in a.iter().zip(&b) {
                let scale = x.dist.max(1.0);
                assert!((x.dist - y.dist).abs() <= scale * 1e-4);
            }
        }
    }

    #[test]
    fn refetches_parents_more_than_psb() {
        // The defining cost difference: parent-link backtracking re-fetches
        // internal nodes, so B&B must read at least as many bytes as PSB reads
        // on the same tree for the same query set (and typically more).
        let (ps, tree) = setup(4, 2000.0); // loose clusters force backtracking
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let queries = sample_queries(&ps, 10, 0.02, 23);
        let mut bnb_bytes = 0u64;
        let mut psb_bytes = 0u64;
        for q in queries.iter() {
            bnb_bytes += bnb_query(&tree, q, 8, &cfg, &opts).1.global_bytes;
            psb_bytes += psb_query(&tree, q, 8, &cfg, &opts).1.global_bytes;
        }
        assert!(
            bnb_bytes * 10 > psb_bytes * 9,
            "B&B bytes {bnb_bytes} unexpectedly far below PSB bytes {psb_bytes}"
        );
    }

    #[test]
    fn exact_with_tiny_k_and_large_k() {
        let (ps, tree) = setup(2, 80.0);
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let q = sample_queries(&ps, 3, 0.01, 24);
        for qp in q.iter() {
            for k in [1usize, 64] {
                let (got, _) = bnb_query(&tree, qp, k, &cfg, &opts);
                let want = linear_knn(&ps, qp, k);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    let scale = w.dist.max(1.0);
                    assert!((g.dist - w.dist).abs() <= scale * 1e-4);
                }
            }
        }
    }
}
