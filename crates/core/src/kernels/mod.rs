//! The GPU kNN kernels: PSB, branch-and-bound, brute force, restart, range,
//! and the task-parallel strawman.
//!
//! All tree kernels are generic over [`GpuIndex`], so the identical traversal
//! runs over bounding-sphere trees (SS-tree) and bounding-rectangle trees
//! (packed R-tree) — the node shape only changes the per-child evaluation and
//! its instruction cost, which is precisely the comparison the paper's §II-C
//! makes. Every kernel returns exact results plus the simulated block's
//! counters; shared helpers live here so all kernels are metered identically
//! wherever they do identical work.

pub mod bnb;
pub mod brute;
pub mod psb;
pub mod range;
pub mod restart;
pub mod tpss;

use psb_geom::dist;
use psb_gpu::{Block, NodeKind, Phase};

use crate::dist_cost;
use crate::index::GpuIndex;
use crate::knnlist::GpuKnnList;
use crate::options::{KernelOptions, NodeLayout};

/// Meter fetching an internal node's child-volume block. `level` is the node's
/// tree depth (root = 0), feeding the per-level visit histogram; the load is
/// attributed to whatever [`Phase`] the block is currently in.
pub(crate) fn fetch_internal<T: GpuIndex>(
    block: &mut Block,
    tree: &T,
    n: u32,
    layout: NodeLayout,
    level: u32,
) {
    block.visit_node(level, NodeKind::Internal);
    match layout {
        NodeLayout::Soa => block.load_global(tree.internal_node_bytes(n)),
        NodeLayout::Aos => {
            block.load_global_strided(tree.children(n).len() as u64, tree.child_entry_bytes());
        }
    }
}

/// Meter fetching a leaf node's point block. `sequential` marks arrivals via
/// the right-sibling link: leaves are laid out contiguously, so the scan is a
/// prefetchable stream (the paper's "fast linear scanning"). `level` is the
/// leaf's tree depth for the visit histogram.
pub(crate) fn fetch_leaf<T: GpuIndex>(
    block: &mut Block,
    tree: &T,
    n: u32,
    layout: NodeLayout,
    sequential: bool,
    level: u32,
) {
    block.visit_node(level, NodeKind::Leaf);
    match layout {
        NodeLayout::Soa if sequential => block.load_global_stream(tree.leaf_node_bytes(n)),
        NodeLayout::Soa => block.load_global(tree.leaf_node_bytes(n)),
        NodeLayout::Aos => {
            block.load_global_strided(tree.leaf_points(n).len() as u64, tree.point_entry_bytes());
        }
    }
}

/// Scratch buffers reused across node visits so the simulation does not
/// allocate in its hot loop.
#[derive(Default)]
pub(crate) struct Scratch {
    pub min_d: Vec<f32>,
    pub max_d: Vec<f32>,
    pub leaf: Vec<(f32, u32)>,
}

/// Fetch a leaf, compute all point distances in parallel, and push improvements
/// into the k-best list. Returns true when the list changed (PSB's
/// continue-scanning test). `sequential` marks sibling-scan arrivals.
///
/// Phase choreography: the fetch and the distance sweep run under
/// [`Phase::LeafScan`]; offering into the k-best list runs under
/// [`Phase::ResultMerge`], which is left set on return — callers re-set their
/// phase at the next branch they take.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_leaf<T: GpuIndex>(
    block: &mut Block,
    tree: &T,
    n: u32,
    q: &[f32],
    list: &mut GpuKnnList,
    scratch: &mut Scratch,
    opts: &KernelOptions,
    sequential: bool,
    level: u32,
) -> bool {
    block.set_phase(Phase::LeafScan);
    fetch_leaf(block, tree, n, opts.layout, sequential, level);
    let range = tree.leaf_points(n);
    let start = range.start;
    let len = range.len();
    scratch.leaf.clear();
    let dc = dist_cost(tree.dims());
    block.par_for(len, dc, |i| {
        let p = start + i;
        let d = dist(q, tree.point(p));
        scratch.leaf.push((d, tree.point_id(p)));
    });
    block.set_phase(Phase::ResultMerge);
    let mut changed = false;
    for &(d, id) in &scratch.leaf {
        changed |= list.offer(block, d, id);
    }
    changed
}

/// Compute MINDIST (and optionally MAXDIST) for every child of internal node
/// `n` into the scratch buffers, metered as one data-parallel sweep whose
/// per-item cost comes from the index's node shape.
pub(crate) fn child_distances<T: GpuIndex>(
    block: &mut Block,
    tree: &T,
    n: u32,
    q: &[f32],
    with_max: bool,
    scratch: &mut Scratch,
) {
    let kids = tree.children(n);
    let start = kids.start;
    let cnt = kids.len();
    scratch.min_d.clear();
    scratch.max_d.clear();
    let cost = tree.child_eval_cost(with_max);
    block.par_for(cnt, cost, |i| {
        let c = start + i as u32;
        let (lo, hi) = tree.child_min_max(c, q, with_max);
        scratch.min_d.push(lo);
        if with_max {
            scratch.max_d.push(hi);
        }
    });
}

/// The k-th smallest MAXDIST bound (Algorithm 1 line 14): an upper bound on the
/// k-th nearest neighbor distance, valid because each of the k nearest child
/// subtrees contains at least one point no farther than its MAXDIST.
/// Only callable when the node has at least k children.
pub(crate) fn kth_maxdist(block: &mut Block, max_d: &[f32], k: usize) -> f32 {
    debug_assert!(max_d.len() >= k && k >= 1);
    block.par_kth_select(max_d.len(), k);
    let mut v: Vec<f32> = max_d.to_vec();
    v.sort_by(f32::total_cmp);
    v[k - 1]
}
