//! The GPU kNN kernels: PSB, branch-and-bound, brute force, restart, range,
//! and the task-parallel strawman.
//!
//! All tree kernels are generic over [`GpuIndex`], so the identical traversal
//! runs over bounding-sphere trees (SS-tree) and bounding-rectangle trees
//! (packed R-tree) — the node shape only changes the per-child evaluation and
//! its instruction cost, which is precisely the comparison the paper's §II-C
//! makes. Every kernel returns exact results plus the simulated block's
//! counters; shared helpers live here so all kernels are metered identically
//! wherever they do identical work.

pub mod bnb;
pub mod brute;
pub mod psb;
pub mod range;
pub mod restart;
pub mod stackfree;
pub mod tpss;

use std::cell::RefCell;

use psb_geom::{DistKernel, DistLanes};
use psb_gpu::{Block, DeviceConfig, FaultState, NodeKind, Phase, TraceSink};

use crate::dist_cost;
use crate::error::KernelError;
use crate::index::{GpuIndex, SweepScratch};
use crate::knnlist::GpuKnnList;
use crate::options::{KernelOptions, Metering, NodeLayout};

/// Build the simulated block a kernel launch runs on: `threads_per_block`
/// threads, mirrored into `sink`, fused [`KernelOptions::fuse`] ways. All
/// block-structured kernels construct their context here so the fusion knob
/// applies uniformly. The `M` parameter picks the metered simulator
/// (`M = true`) or the zero-accounting fast path (`M = false`) — resolved
/// once per launch by [`effective_metering`], never per load.
pub(crate) fn kernel_block<'s, const M: bool>(
    opts: &KernelOptions,
    cfg: &DeviceConfig,
    sink: &'s mut dyn TraceSink,
) -> Block<'s, M> {
    let mut block = Block::with_sink(opts.threads_per_block, cfg, sink);
    if opts.fuse > 1 {
        block.fuse(opts.fuse);
    }
    block
}

/// The metering mode a launch actually runs under: the option as requested,
/// except that fault injection forces [`Metering::Simulated`] — detection
/// (truncation latch, watchdog, ECC flag) lives inside the accounting an
/// unmetered block compiles out, so an unmetered faulted launch would never
/// notice its faults. Every kernel entry dispatches on this exactly once.
pub(crate) fn effective_metering(opts: &KernelOptions, faults: &Option<FaultState>) -> Metering {
    if faults.is_some() {
        Metering::Simulated
    } else {
        opts.metering
    }
}

/// Traversal step budget: generous enough that no valid tree can come close
/// (branch-and-bound revisits each internal node at most `degree + 1` times),
/// tight enough that a corruption-induced cycle is cut off promptly.
pub(crate) fn step_budget<T: GpuIndex>(tree: &T) -> u64 {
    16 * (tree.num_nodes() as u64 + 2) * (tree.degree() as u64 + 2) + 1024
}

/// The per-launch hardening ledger: a step counter against a budget, polled
/// together with the block's device fault flags at every traversal step.
pub(crate) struct Budget {
    steps: u64,
    limit: u64,
}

impl Budget {
    /// Budget for a tree traversal.
    pub fn for_tree<T: GpuIndex>(tree: &T) -> Self {
        Self { steps: 0, limit: step_budget(tree) }
    }

    /// Budget for a linear scan over `n` items in tiles.
    pub fn for_scan(n: usize) -> Self {
        Self { steps: 0, limit: n as u64 + 1024 }
    }

    /// One traversal step: count it, enforce the budget, poll device faults.
    pub fn tick<const M: bool>(&mut self, block: &Block<'_, M>) -> Result<(), KernelError> {
        self.steps += 1;
        if self.steps > self.limit {
            return Err(KernelError::StepBudgetExceeded { budget: self.limit });
        }
        if let Some(fault) = block.device_fault() {
            return Err(KernelError::Device(fault));
        }
        Ok(())
    }
}

/// Bounds-check a node id read from a structural link.
pub(crate) fn checked_node<T: GpuIndex>(
    tree: &T,
    link: &'static str,
    from: u32,
    target: u32,
) -> Result<u32, KernelError> {
    if (target as usize) < tree.num_nodes() {
        Ok(target)
    } else {
        Err(KernelError::LinkOutOfBounds {
            link,
            node: from,
            target: target as u64,
            limit: tree.num_nodes() as u64,
        })
    }
}

/// Bounds-check an internal node's child range. The range must be non-empty
/// and lie inside the node array.
pub(crate) fn checked_children<T: GpuIndex>(
    tree: &T,
    n: u32,
) -> Result<std::ops::Range<u32>, KernelError> {
    if tree.is_leaf(n) {
        return Err(KernelError::CorruptNode { node: n, detail: "expected an internal node" });
    }
    let kids = tree.children(n);
    if kids.is_empty() {
        return Err(KernelError::CorruptNode { node: n, detail: "internal node with no children" });
    }
    let limit = tree.num_nodes() as u64;
    if kids.start as u64 >= limit || kids.end as u64 > limit {
        return Err(KernelError::LinkOutOfBounds {
            link: "children",
            node: n,
            target: kids.end as u64,
            limit,
        });
    }
    Ok(kids)
}

/// Bounds-check a leaf node's point range against the point array.
pub(crate) fn checked_leaf_points<T: GpuIndex>(
    tree: &T,
    n: u32,
) -> Result<std::ops::Range<usize>, KernelError> {
    if !tree.is_leaf(n) {
        return Err(KernelError::CorruptNode { node: n, detail: "expected a leaf node" });
    }
    let range = tree.leaf_points(n);
    let limit = tree.num_points() as u64;
    if range.start as u64 > range.end as u64 || range.end as u64 > limit {
        return Err(KernelError::LinkOutOfBounds {
            link: "leaf_points",
            node: n,
            target: range.end as u64,
            limit,
        });
    }
    Ok(range)
}

/// Bounds-check a leaf's dense id against the leaf count.
pub(crate) fn checked_leaf_id<T: GpuIndex>(tree: &T, n: u32) -> Result<u32, KernelError> {
    let lid = tree.leaf_id(n);
    if (lid as usize) < tree.num_leaves() {
        Ok(lid)
    } else {
        Err(KernelError::LinkOutOfBounds {
            link: "leaf_id",
            node: n,
            target: lid as u64,
            limit: tree.num_leaves() as u64,
        })
    }
}

/// Sanity-check the tree frame every traversal relies on before following any
/// link: a root inside the node array and a non-empty leaf chain.
pub(crate) fn checked_root<T: GpuIndex>(tree: &T) -> Result<u32, KernelError> {
    if tree.num_nodes() == 0 || tree.num_leaves() == 0 {
        return Err(KernelError::CorruptNode { node: 0, detail: "index has no nodes or leaves" });
    }
    checked_node(tree, "root", tree.root(), tree.root())
}

/// Meter fetching an internal node's child-volume block. `level` is the node's
/// tree depth (root = 0), feeding the per-level visit histogram; the load is
/// attributed to whatever [`Phase`] the block is currently in.
pub(crate) fn fetch_internal<T: GpuIndex, const M: bool>(
    block: &mut Block<'_, M>,
    tree: &T,
    n: u32,
    layout: NodeLayout,
    level: u32,
) {
    block.visit_node(level, NodeKind::Internal);
    match layout {
        NodeLayout::Soa => block.load_global(tree.internal_node_bytes(n)),
        NodeLayout::Aos => {
            block.load_global_strided(tree.children(n).len() as u64, tree.child_entry_bytes());
        }
    }
}

/// Meter fetching a leaf node's point block. `sequential` marks arrivals via
/// the right-sibling link: leaves are laid out contiguously, so the scan is a
/// prefetchable stream (the paper's "fast linear scanning"). `level` is the
/// leaf's tree depth for the visit histogram.
pub(crate) fn fetch_leaf<T: GpuIndex, const M: bool>(
    block: &mut Block<'_, M>,
    tree: &T,
    n: u32,
    layout: NodeLayout,
    sequential: bool,
    level: u32,
) {
    block.visit_node(level, NodeKind::Leaf);
    match layout {
        NodeLayout::Soa if sequential => block.load_global_stream(tree.leaf_node_bytes(n)),
        NodeLayout::Soa => block.load_global(tree.leaf_node_bytes(n)),
        NodeLayout::Aos => {
            block.load_global_strided(tree.leaf_points(n).len() as u64, tree.point_entry_bytes());
        }
    }
}

/// Scratch buffers reused across node visits so the simulation does not
/// allocate in its hot loop: the per-query resolved distance kernel, the
/// child-sweep buffers, the leaf distance buffer, and the k-th-select
/// temporary. Pooled per host thread (see [`with_scratch`]) so the rayon
/// batch loop reuses capacity across queries too.
#[derive(Default)]
pub(crate) struct Scratch {
    pub dk: DistKernel,
    pub sweep: SweepScratch,
    pub leaf: Vec<(f32, u32)>,
    pub kth: Vec<f32>,
    /// The throughput engine's sweep-replay arena (see [`SweepMemo`]). Only
    /// the scheduled PSB kernel touches it; the reference path leaves it
    /// untouched, and its capacity persists across the whole batch.
    pub memo: SweepMemo,
}

impl Scratch {
    /// Prepare for a query in `dims` dimensions: re-resolve the distance
    /// kernel only when the dimensionality or lane selection changes, empty
    /// every buffer. Resolution therefore happens once per (worker thread ×
    /// batch), not per query — the fn-pointer dispatch cost vanishes from
    /// 100k-query wave batches.
    fn reset_for(&mut self, dims: usize, lanes: DistLanes) {
        if self.dk.dims() != dims || self.dk.lanes() != lanes {
            self.dk = DistKernel::for_dims_lanes(dims, lanes);
        }
        self.sweep.clear();
        self.leaf.clear();
        self.kth.clear();
    }
}

/// A [`SweepMemo`] slot's payload, returned by value so the caller holds no
/// borrow while it meters the replayed work.
#[derive(Clone, Copy)]
pub(crate) struct MemoEntry {
    start: u32,
    len: u32,
    /// The node's k-th-MAXDIST bound, when the reference path would have
    /// computed one (`use_minmax_prune` and at least k children).
    pub bound: Option<f32>,
}

/// Per-query memo of phase-2 internal-node sweep values, the throughput
/// engine's biggest host win (DESIGN.md §12).
///
/// PSB's stackless sweep re-descends through the same internal nodes after
/// every backtrack — on poorly-pruning workloads (high-dimensional uniform
/// data) each internal node is re-swept tens of times per query, recomputing
/// the *identical* child MINDISTs and k-th-MAXDIST bound each time (they
/// depend only on the node and the query). The memo stores the first visit's
/// values; revisits replay the same deterministic metering
/// (`par_for(children, cost)` + `par_kth_select`) and reuse the stored bits,
/// so counters and results are bit-identical to the reference kernel while
/// the host skips the distance sweep and the selection.
///
/// Slots are epoch-stamped: `begin_query` bumps the epoch instead of clearing
/// the per-node slot array, so a batch of B queries over an N-node tree pays
/// one O(N) allocation for the whole batch, not B clears.
#[derive(Default)]
pub(crate) struct SweepMemo {
    epoch: u64,
    slots: Vec<(u64, MemoEntry)>,
    blob: Vec<f32>,
}

impl SweepMemo {
    /// Start a new query: invalidate every slot (epoch bump) and reset the
    /// value blob, keeping all capacity.
    pub fn begin_query(&mut self, num_nodes: usize) {
        self.epoch += 1;
        self.blob.clear();
        if self.slots.len() < num_nodes {
            self.slots.resize(num_nodes, (0, MemoEntry { start: 0, len: 0, bound: None }));
        }
    }

    /// This query's memo for node `n`, if stored. Copy-out, so no borrow
    /// outlives the call.
    pub fn entry(&self, n: u32) -> Option<MemoEntry> {
        match self.slots.get(n as usize) {
            Some(&(epoch, entry)) if epoch == self.epoch => Some(entry),
            _ => None,
        }
    }

    /// The stored child MINDISTs behind an [`entry`](Self::entry).
    pub fn values(&self, entry: MemoEntry) -> &[f32] {
        &self.blob[entry.start as usize..(entry.start + entry.len) as usize]
    }

    /// Store node `n`'s sweep values for the current query.
    pub fn store(&mut self, n: u32, min_d: &[f32], bound: Option<f32>) {
        let start = self.blob.len() as u32;
        self.blob.extend_from_slice(min_d);
        if let Some(slot) = self.slots.get_mut(n as usize) {
            *slot = (self.epoch, MemoEntry { start, len: min_d.len() as u32, bound });
        }
    }
}

/// PSB's leftmost-qualifying-child selection (Algorithm 1 lines 16–26), shared
/// by the reference sweep and the memo-replay path so both meter identically:
/// one parallel predicate evaluation, a ballot/find-first-set reduction, and
/// the serial pick.
pub(crate) fn leftmost_qualifying<T: GpuIndex, const M: bool>(
    block: &mut Block<'_, M>,
    tree: &T,
    kids: std::ops::Range<u32>,
    min_d: &[f32],
    pruning: f32,
    visited: i64,
) -> Option<u32> {
    block.par_for(kids.len(), 1, |_| {});
    block.par_reduce(kids.len(), 1);
    block.scalar(2);
    for (i, c) in kids.enumerate() {
        if min_d[i] < pruning && tree.subtree_max_leaf(c) as i64 > visited {
            return Some(c);
        }
    }
    None
}

thread_local! {
    /// One pooled [`Scratch`] per host thread: rayon gives each worker its own
    /// copy, so the whole batch loop allocates scratch capacity only once per
    /// thread (not per query, and certainly not per node).
    static SCRATCH_POOL: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Run `f` with this thread's pooled scratch, reset for `dims` and the
/// batch's lane selection. Falls back to a fresh scratch if the pool is
/// unexpectedly still borrowed (e.g. a kernel re-entered through a recovery
/// path) — correctness never depends on reuse.
pub(crate) fn with_scratch<R>(
    dims: usize,
    lanes: DistLanes,
    f: impl FnOnce(&mut Scratch) -> R,
) -> R {
    SCRATCH_POOL.with(|pool| match pool.try_borrow_mut() {
        Ok(mut scratch) => {
            scratch.reset_for(dims, lanes);
            f(&mut scratch)
        }
        Err(_) => {
            let mut scratch = Scratch::default();
            scratch.reset_for(dims, lanes);
            f(&mut scratch)
        }
    })
}

/// Fetch a leaf, compute all point distances in parallel, and push improvements
/// into the k-best list. Returns true when the list changed (PSB's
/// continue-scanning test). `sequential` marks sibling-scan arrivals.
///
/// Hardening: the leaf's point range is bounds-checked before it is scanned,
/// and every computed distance passes through the block's fault injector (a
/// no-op without an attached fault state).
///
/// Phase choreography: the fetch and the distance sweep run under
/// [`Phase::LeafScan`]; offering into the k-best list runs under
/// [`Phase::ResultMerge`], which is left set on return — callers re-set their
/// phase at the next branch they take.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_leaf<T: GpuIndex, const M: bool>(
    block: &mut Block<'_, M>,
    tree: &T,
    n: u32,
    q: &[f32],
    list: &mut GpuKnnList,
    scratch: &mut Scratch,
    opts: &KernelOptions,
    sequential: bool,
    level: u32,
) -> Result<bool, KernelError> {
    let range = checked_leaf_points(tree, n)?;
    block.set_phase(Phase::LeafScan);
    fetch_leaf(block, tree, n, opts.layout, sequential, level);
    let len = range.len();
    scratch.leaf.clear();
    // Metering is a function of (len, cost) only; the distances themselves
    // come from the index's leaf sweep, which streams the packed arena block
    // when one is attached and gathers (exactly as this loop used to)
    // otherwise. Counters and values are identical either way.
    let dc = dist_cost(tree.dims());
    block.par_for(len, dc, |_| {});
    tree.leaf_sweep(n, q, &scratch.dk, &mut scratch.sweep.tmp, &mut scratch.leaf);
    // Computed distances pass through the fault injector. Without an attached
    // fault state `fault_f32` is the identity and meters nothing, so the
    // sweep is skipped wholesale on the fault-free path.
    if block.has_faults() {
        for entry in &mut scratch.leaf {
            entry.0 = block.fault_f32(entry.0);
        }
    }
    block.set_phase(Phase::ResultMerge);
    let mut changed = false;
    for &(d, id) in &scratch.leaf {
        changed |= list.offer(block, d, id);
    }
    Ok(changed)
}

/// Compute MINDIST (and optionally MAXDIST and the anchor distance) for every
/// child of internal node `n` into the sweep buffers, metered as one
/// data-parallel sweep whose per-item cost comes from the index's node shape.
///
/// `with_anchor` asks the sweep for the representative-point distances the
/// descent uses as its tie-break — packed-arena sweeps derive them from the
/// same center distance as the bounds, so requesting them up front is free
/// where computing them per-child later would gather again.
pub(crate) fn child_distances<T: GpuIndex, const M: bool>(
    block: &mut Block<'_, M>,
    tree: &T,
    n: u32,
    q: &[f32],
    with_max: bool,
    with_anchor: bool,
    scratch: &mut Scratch,
) {
    let cnt = tree.children(n).len();
    scratch.sweep.clear();
    let cost = tree.child_eval_cost(with_max);
    // Metering depends only on (cnt, cost); values come from the index sweep
    // (packed arena stream, or the same per-child gather as the historical
    // loop body).
    block.par_for(cnt, cost, |_| {});
    tree.child_sweep(n, q, &scratch.dk, with_max, with_anchor, &mut scratch.sweep);
    // Loaded child volumes pass through the fault injector: a flipped bound
    // is how an ECC event on the node payload reaches the pruning decisions.
    // Skipped wholesale when no fault state is attached (identity, no meter).
    if block.has_faults() {
        for v in &mut scratch.sweep.min_d {
            *v = block.fault_f32(*v);
        }
        for v in &mut scratch.sweep.max_d {
            *v = block.fault_f32(*v);
        }
    }
}

/// Follow node `n`'s rope (escape) link, metered as one pointer-sized load
/// plus the branch. Returns [`NO_ROPE`](crate::index::NO_ROPE) at the end of
/// the preorder sweep; any other target is bounds-checked like every
/// structural link.
pub(crate) fn checked_rope<T: GpuIndex, const M: bool>(
    block: &mut Block<'_, M>,
    tree: &T,
    n: u32,
) -> Result<u32, KernelError> {
    block.scalar(1);
    block.load_global(4);
    let r = tree.rope(n);
    if r == crate::index::NO_ROPE {
        Ok(crate::index::NO_ROPE)
    } else {
        checked_node(tree, "rope", n, r)
    }
}

/// Evaluate one node's **own** bounding volume against the query — the
/// node-centric arrival test of the rope traversals, where each node fetches
/// its own entry instead of the parent sweeping all children at once. Metered
/// as a one-item sweep at the index's node-shape cost; the bound passes
/// through the fault injector exactly like the batched sweep's.
pub(crate) fn node_min_dist<T: GpuIndex, const M: bool>(
    block: &mut Block<'_, M>,
    tree: &T,
    n: u32,
    q: &[f32],
) -> f32 {
    block.load_global(tree.child_entry_bytes());
    block.par_for(1, tree.child_eval_cost(false), |_| {});
    let mut d = tree.child_min_max(n, q, false).0;
    if block.has_faults() {
        d = block.fault_f32(d);
    }
    d
}

/// The k-th smallest MAXDIST bound (Algorithm 1 line 14): an upper bound on the
/// k-th nearest neighbor distance, valid because each of the k nearest child
/// subtrees contains at least one point no farther than its MAXDIST.
/// Only callable when the node has at least k children. `tmp` is pooled
/// scratch; the selected element is the same one a full `total_cmp` sort would
/// put at position `k - 1` (equal keys are bit-identical under a total order).
pub(crate) fn kth_maxdist<const M: bool>(
    block: &mut Block<'_, M>,
    max_d: &[f32],
    k: usize,
    tmp: &mut Vec<f32>,
) -> f32 {
    debug_assert!(max_d.len() >= k && k >= 1);
    block.par_kth_select(max_d.len(), k);
    tmp.clear();
    tmp.extend_from_slice(max_d);
    let (_, kth, _) = tmp.select_nth_unstable_by(k - 1, f32::total_cmp);
    *kth
}
