//! The GPU kNN kernels: PSB, branch-and-bound, brute force, restart, range,
//! and the task-parallel strawman.
//!
//! All tree kernels are generic over [`GpuIndex`], so the identical traversal
//! runs over bounding-sphere trees (SS-tree) and bounding-rectangle trees
//! (packed R-tree) — the node shape only changes the per-child evaluation and
//! its instruction cost, which is precisely the comparison the paper's §II-C
//! makes. Every kernel returns exact results plus the simulated block's
//! counters; shared helpers live here so all kernels are metered identically
//! wherever they do identical work.

pub mod bnb;
pub mod brute;
pub mod psb;
pub mod range;
pub mod restart;
pub mod tpss;

use psb_geom::dist;
use psb_gpu::{Block, NodeKind, Phase};

use crate::dist_cost;
use crate::error::KernelError;
use crate::index::GpuIndex;
use crate::knnlist::GpuKnnList;
use crate::options::{KernelOptions, NodeLayout};

/// Traversal step budget: generous enough that no valid tree can come close
/// (branch-and-bound revisits each internal node at most `degree + 1` times),
/// tight enough that a corruption-induced cycle is cut off promptly.
pub(crate) fn step_budget<T: GpuIndex>(tree: &T) -> u64 {
    16 * (tree.num_nodes() as u64 + 2) * (tree.degree() as u64 + 2) + 1024
}

/// The per-launch hardening ledger: a step counter against a budget, polled
/// together with the block's device fault flags at every traversal step.
pub(crate) struct Budget {
    steps: u64,
    limit: u64,
}

impl Budget {
    /// Budget for a tree traversal.
    pub fn for_tree<T: GpuIndex>(tree: &T) -> Self {
        Self { steps: 0, limit: step_budget(tree) }
    }

    /// Budget for a linear scan over `n` items in tiles.
    pub fn for_scan(n: usize) -> Self {
        Self { steps: 0, limit: n as u64 + 1024 }
    }

    /// One traversal step: count it, enforce the budget, poll device faults.
    pub fn tick(&mut self, block: &Block) -> Result<(), KernelError> {
        self.steps += 1;
        if self.steps > self.limit {
            return Err(KernelError::StepBudgetExceeded { budget: self.limit });
        }
        if let Some(fault) = block.device_fault() {
            return Err(KernelError::Device(fault));
        }
        Ok(())
    }
}

/// Bounds-check a node id read from a structural link.
pub(crate) fn checked_node<T: GpuIndex>(
    tree: &T,
    link: &'static str,
    from: u32,
    target: u32,
) -> Result<u32, KernelError> {
    if (target as usize) < tree.num_nodes() {
        Ok(target)
    } else {
        Err(KernelError::LinkOutOfBounds {
            link,
            node: from,
            target: target as u64,
            limit: tree.num_nodes() as u64,
        })
    }
}

/// Bounds-check an internal node's child range. The range must be non-empty
/// and lie inside the node array.
pub(crate) fn checked_children<T: GpuIndex>(
    tree: &T,
    n: u32,
) -> Result<std::ops::Range<u32>, KernelError> {
    if tree.is_leaf(n) {
        return Err(KernelError::CorruptNode { node: n, detail: "expected an internal node" });
    }
    let kids = tree.children(n);
    if kids.is_empty() {
        return Err(KernelError::CorruptNode { node: n, detail: "internal node with no children" });
    }
    let limit = tree.num_nodes() as u64;
    if kids.start as u64 >= limit || kids.end as u64 > limit {
        return Err(KernelError::LinkOutOfBounds {
            link: "children",
            node: n,
            target: kids.end as u64,
            limit,
        });
    }
    Ok(kids)
}

/// Bounds-check a leaf node's point range against the point array.
pub(crate) fn checked_leaf_points<T: GpuIndex>(
    tree: &T,
    n: u32,
) -> Result<std::ops::Range<usize>, KernelError> {
    if !tree.is_leaf(n) {
        return Err(KernelError::CorruptNode { node: n, detail: "expected a leaf node" });
    }
    let range = tree.leaf_points(n);
    let limit = tree.num_points() as u64;
    if range.start as u64 > range.end as u64 || range.end as u64 > limit {
        return Err(KernelError::LinkOutOfBounds {
            link: "leaf_points",
            node: n,
            target: range.end as u64,
            limit,
        });
    }
    Ok(range)
}

/// Bounds-check a leaf's dense id against the leaf count.
pub(crate) fn checked_leaf_id<T: GpuIndex>(tree: &T, n: u32) -> Result<u32, KernelError> {
    let lid = tree.leaf_id(n);
    if (lid as usize) < tree.num_leaves() {
        Ok(lid)
    } else {
        Err(KernelError::LinkOutOfBounds {
            link: "leaf_id",
            node: n,
            target: lid as u64,
            limit: tree.num_leaves() as u64,
        })
    }
}

/// Sanity-check the tree frame every traversal relies on before following any
/// link: a root inside the node array and a non-empty leaf chain.
pub(crate) fn checked_root<T: GpuIndex>(tree: &T) -> Result<u32, KernelError> {
    if tree.num_nodes() == 0 || tree.num_leaves() == 0 {
        return Err(KernelError::CorruptNode { node: 0, detail: "index has no nodes or leaves" });
    }
    checked_node(tree, "root", tree.root(), tree.root())
}

/// Meter fetching an internal node's child-volume block. `level` is the node's
/// tree depth (root = 0), feeding the per-level visit histogram; the load is
/// attributed to whatever [`Phase`] the block is currently in.
pub(crate) fn fetch_internal<T: GpuIndex>(
    block: &mut Block,
    tree: &T,
    n: u32,
    layout: NodeLayout,
    level: u32,
) {
    block.visit_node(level, NodeKind::Internal);
    match layout {
        NodeLayout::Soa => block.load_global(tree.internal_node_bytes(n)),
        NodeLayout::Aos => {
            block.load_global_strided(tree.children(n).len() as u64, tree.child_entry_bytes());
        }
    }
}

/// Meter fetching a leaf node's point block. `sequential` marks arrivals via
/// the right-sibling link: leaves are laid out contiguously, so the scan is a
/// prefetchable stream (the paper's "fast linear scanning"). `level` is the
/// leaf's tree depth for the visit histogram.
pub(crate) fn fetch_leaf<T: GpuIndex>(
    block: &mut Block,
    tree: &T,
    n: u32,
    layout: NodeLayout,
    sequential: bool,
    level: u32,
) {
    block.visit_node(level, NodeKind::Leaf);
    match layout {
        NodeLayout::Soa if sequential => block.load_global_stream(tree.leaf_node_bytes(n)),
        NodeLayout::Soa => block.load_global(tree.leaf_node_bytes(n)),
        NodeLayout::Aos => {
            block.load_global_strided(tree.leaf_points(n).len() as u64, tree.point_entry_bytes());
        }
    }
}

/// Scratch buffers reused across node visits so the simulation does not
/// allocate in its hot loop.
#[derive(Default)]
pub(crate) struct Scratch {
    pub min_d: Vec<f32>,
    pub max_d: Vec<f32>,
    pub leaf: Vec<(f32, u32)>,
}

/// Fetch a leaf, compute all point distances in parallel, and push improvements
/// into the k-best list. Returns true when the list changed (PSB's
/// continue-scanning test). `sequential` marks sibling-scan arrivals.
///
/// Hardening: the leaf's point range is bounds-checked before it is scanned,
/// and every computed distance passes through the block's fault injector (a
/// no-op without an attached fault state).
///
/// Phase choreography: the fetch and the distance sweep run under
/// [`Phase::LeafScan`]; offering into the k-best list runs under
/// [`Phase::ResultMerge`], which is left set on return — callers re-set their
/// phase at the next branch they take.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_leaf<T: GpuIndex>(
    block: &mut Block,
    tree: &T,
    n: u32,
    q: &[f32],
    list: &mut GpuKnnList,
    scratch: &mut Scratch,
    opts: &KernelOptions,
    sequential: bool,
    level: u32,
) -> Result<bool, KernelError> {
    let range = checked_leaf_points(tree, n)?;
    block.set_phase(Phase::LeafScan);
    fetch_leaf(block, tree, n, opts.layout, sequential, level);
    let start = range.start;
    let len = range.len();
    scratch.leaf.clear();
    let dc = dist_cost(tree.dims());
    block.par_for(len, dc, |i| {
        let p = start + i;
        let d = dist(q, tree.point(p));
        scratch.leaf.push((d, tree.point_id(p)));
    });
    for entry in &mut scratch.leaf {
        entry.0 = block.fault_f32(entry.0);
    }
    block.set_phase(Phase::ResultMerge);
    let mut changed = false;
    for &(d, id) in &scratch.leaf {
        changed |= list.offer(block, d, id);
    }
    Ok(changed)
}

/// Compute MINDIST (and optionally MAXDIST) for every child of internal node
/// `n` into the scratch buffers, metered as one data-parallel sweep whose
/// per-item cost comes from the index's node shape.
pub(crate) fn child_distances<T: GpuIndex>(
    block: &mut Block,
    tree: &T,
    n: u32,
    q: &[f32],
    with_max: bool,
    scratch: &mut Scratch,
) {
    let kids = tree.children(n);
    let start = kids.start;
    let cnt = kids.len();
    scratch.min_d.clear();
    scratch.max_d.clear();
    let cost = tree.child_eval_cost(with_max);
    block.par_for(cnt, cost, |i| {
        let c = start + i as u32;
        let (lo, hi) = tree.child_min_max(c, q, with_max);
        scratch.min_d.push(lo);
        if with_max {
            scratch.max_d.push(hi);
        }
    });
    // Loaded child volumes pass through the fault injector (no-op when no
    // fault state is attached): a flipped bound is how an ECC event on the
    // node payload reaches the pruning decisions.
    for v in &mut scratch.min_d {
        *v = block.fault_f32(*v);
    }
    for v in &mut scratch.max_d {
        *v = block.fault_f32(*v);
    }
}

/// The k-th smallest MAXDIST bound (Algorithm 1 line 14): an upper bound on the
/// k-th nearest neighbor distance, valid because each of the k nearest child
/// subtrees contains at least one point no farther than its MAXDIST.
/// Only callable when the node has at least k children.
pub(crate) fn kth_maxdist(block: &mut Block, max_d: &[f32], k: usize) -> f32 {
    debug_assert!(max_d.len() >= k && k >= 1);
    block.par_kth_select(max_d.len(), k);
    let mut v: Vec<f32> = max_d.to_vec();
    v.sort_by(f32::total_cmp);
    v[k - 1]
}
