//! The GPU kNN kernels: PSB, branch-and-bound, brute force, restart, range,
//! and the task-parallel strawman.
//!
//! All tree kernels are generic over [`GpuIndex`], so the identical traversal
//! runs over bounding-sphere trees (SS-tree) and bounding-rectangle trees
//! (packed R-tree) — the node shape only changes the per-child evaluation and
//! its instruction cost, which is precisely the comparison the paper's §II-C
//! makes. Every kernel returns exact results plus the simulated block's
//! counters; shared helpers live here so all kernels are metered identically
//! wherever they do identical work.

pub mod bnb;
pub mod brute;
pub mod psb;
pub mod range;
pub mod restart;
pub mod tpss;

use std::cell::RefCell;

use psb_geom::DistKernel;
use psb_gpu::{Block, NodeKind, Phase};

use crate::dist_cost;
use crate::error::KernelError;
use crate::index::{GpuIndex, SweepScratch};
use crate::knnlist::GpuKnnList;
use crate::options::{KernelOptions, NodeLayout};

/// Traversal step budget: generous enough that no valid tree can come close
/// (branch-and-bound revisits each internal node at most `degree + 1` times),
/// tight enough that a corruption-induced cycle is cut off promptly.
pub(crate) fn step_budget<T: GpuIndex>(tree: &T) -> u64 {
    16 * (tree.num_nodes() as u64 + 2) * (tree.degree() as u64 + 2) + 1024
}

/// The per-launch hardening ledger: a step counter against a budget, polled
/// together with the block's device fault flags at every traversal step.
pub(crate) struct Budget {
    steps: u64,
    limit: u64,
}

impl Budget {
    /// Budget for a tree traversal.
    pub fn for_tree<T: GpuIndex>(tree: &T) -> Self {
        Self { steps: 0, limit: step_budget(tree) }
    }

    /// Budget for a linear scan over `n` items in tiles.
    pub fn for_scan(n: usize) -> Self {
        Self { steps: 0, limit: n as u64 + 1024 }
    }

    /// One traversal step: count it, enforce the budget, poll device faults.
    pub fn tick(&mut self, block: &Block) -> Result<(), KernelError> {
        self.steps += 1;
        if self.steps > self.limit {
            return Err(KernelError::StepBudgetExceeded { budget: self.limit });
        }
        if let Some(fault) = block.device_fault() {
            return Err(KernelError::Device(fault));
        }
        Ok(())
    }
}

/// Bounds-check a node id read from a structural link.
pub(crate) fn checked_node<T: GpuIndex>(
    tree: &T,
    link: &'static str,
    from: u32,
    target: u32,
) -> Result<u32, KernelError> {
    if (target as usize) < tree.num_nodes() {
        Ok(target)
    } else {
        Err(KernelError::LinkOutOfBounds {
            link,
            node: from,
            target: target as u64,
            limit: tree.num_nodes() as u64,
        })
    }
}

/// Bounds-check an internal node's child range. The range must be non-empty
/// and lie inside the node array.
pub(crate) fn checked_children<T: GpuIndex>(
    tree: &T,
    n: u32,
) -> Result<std::ops::Range<u32>, KernelError> {
    if tree.is_leaf(n) {
        return Err(KernelError::CorruptNode { node: n, detail: "expected an internal node" });
    }
    let kids = tree.children(n);
    if kids.is_empty() {
        return Err(KernelError::CorruptNode { node: n, detail: "internal node with no children" });
    }
    let limit = tree.num_nodes() as u64;
    if kids.start as u64 >= limit || kids.end as u64 > limit {
        return Err(KernelError::LinkOutOfBounds {
            link: "children",
            node: n,
            target: kids.end as u64,
            limit,
        });
    }
    Ok(kids)
}

/// Bounds-check a leaf node's point range against the point array.
pub(crate) fn checked_leaf_points<T: GpuIndex>(
    tree: &T,
    n: u32,
) -> Result<std::ops::Range<usize>, KernelError> {
    if !tree.is_leaf(n) {
        return Err(KernelError::CorruptNode { node: n, detail: "expected a leaf node" });
    }
    let range = tree.leaf_points(n);
    let limit = tree.num_points() as u64;
    if range.start as u64 > range.end as u64 || range.end as u64 > limit {
        return Err(KernelError::LinkOutOfBounds {
            link: "leaf_points",
            node: n,
            target: range.end as u64,
            limit,
        });
    }
    Ok(range)
}

/// Bounds-check a leaf's dense id against the leaf count.
pub(crate) fn checked_leaf_id<T: GpuIndex>(tree: &T, n: u32) -> Result<u32, KernelError> {
    let lid = tree.leaf_id(n);
    if (lid as usize) < tree.num_leaves() {
        Ok(lid)
    } else {
        Err(KernelError::LinkOutOfBounds {
            link: "leaf_id",
            node: n,
            target: lid as u64,
            limit: tree.num_leaves() as u64,
        })
    }
}

/// Sanity-check the tree frame every traversal relies on before following any
/// link: a root inside the node array and a non-empty leaf chain.
pub(crate) fn checked_root<T: GpuIndex>(tree: &T) -> Result<u32, KernelError> {
    if tree.num_nodes() == 0 || tree.num_leaves() == 0 {
        return Err(KernelError::CorruptNode { node: 0, detail: "index has no nodes or leaves" });
    }
    checked_node(tree, "root", tree.root(), tree.root())
}

/// Meter fetching an internal node's child-volume block. `level` is the node's
/// tree depth (root = 0), feeding the per-level visit histogram; the load is
/// attributed to whatever [`Phase`] the block is currently in.
pub(crate) fn fetch_internal<T: GpuIndex>(
    block: &mut Block,
    tree: &T,
    n: u32,
    layout: NodeLayout,
    level: u32,
) {
    block.visit_node(level, NodeKind::Internal);
    match layout {
        NodeLayout::Soa => block.load_global(tree.internal_node_bytes(n)),
        NodeLayout::Aos => {
            block.load_global_strided(tree.children(n).len() as u64, tree.child_entry_bytes());
        }
    }
}

/// Meter fetching a leaf node's point block. `sequential` marks arrivals via
/// the right-sibling link: leaves are laid out contiguously, so the scan is a
/// prefetchable stream (the paper's "fast linear scanning"). `level` is the
/// leaf's tree depth for the visit histogram.
pub(crate) fn fetch_leaf<T: GpuIndex>(
    block: &mut Block,
    tree: &T,
    n: u32,
    layout: NodeLayout,
    sequential: bool,
    level: u32,
) {
    block.visit_node(level, NodeKind::Leaf);
    match layout {
        NodeLayout::Soa if sequential => block.load_global_stream(tree.leaf_node_bytes(n)),
        NodeLayout::Soa => block.load_global(tree.leaf_node_bytes(n)),
        NodeLayout::Aos => {
            block.load_global_strided(tree.leaf_points(n).len() as u64, tree.point_entry_bytes());
        }
    }
}

/// Scratch buffers reused across node visits so the simulation does not
/// allocate in its hot loop: the per-query resolved distance kernel, the
/// child-sweep buffers, the leaf distance buffer, and the k-th-select
/// temporary. Pooled per host thread (see [`with_scratch`]) so the rayon
/// batch loop reuses capacity across queries too.
#[derive(Default)]
pub(crate) struct Scratch {
    pub dk: DistKernel,
    pub sweep: SweepScratch,
    pub leaf: Vec<(f32, u32)>,
    pub kth: Vec<f32>,
}

impl Scratch {
    /// Prepare for a query in `dims` dimensions: re-resolve the distance
    /// kernel only on a dimensionality change, empty every buffer.
    fn reset_for(&mut self, dims: usize) {
        if self.dk.dims() != dims {
            self.dk = DistKernel::for_dims(dims);
        }
        self.sweep.clear();
        self.leaf.clear();
        self.kth.clear();
    }
}

thread_local! {
    /// One pooled [`Scratch`] per host thread: rayon gives each worker its own
    /// copy, so the whole batch loop allocates scratch capacity only once per
    /// thread (not per query, and certainly not per node).
    static SCRATCH_POOL: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Run `f` with this thread's pooled scratch, reset for `dims`. Falls back to
/// a fresh scratch if the pool is unexpectedly still borrowed (e.g. a kernel
/// re-entered through a recovery path) — correctness never depends on reuse.
pub(crate) fn with_scratch<R>(dims: usize, f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH_POOL.with(|pool| match pool.try_borrow_mut() {
        Ok(mut scratch) => {
            scratch.reset_for(dims);
            f(&mut scratch)
        }
        Err(_) => {
            let mut scratch = Scratch::default();
            scratch.reset_for(dims);
            f(&mut scratch)
        }
    })
}

/// Fetch a leaf, compute all point distances in parallel, and push improvements
/// into the k-best list. Returns true when the list changed (PSB's
/// continue-scanning test). `sequential` marks sibling-scan arrivals.
///
/// Hardening: the leaf's point range is bounds-checked before it is scanned,
/// and every computed distance passes through the block's fault injector (a
/// no-op without an attached fault state).
///
/// Phase choreography: the fetch and the distance sweep run under
/// [`Phase::LeafScan`]; offering into the k-best list runs under
/// [`Phase::ResultMerge`], which is left set on return — callers re-set their
/// phase at the next branch they take.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_leaf<T: GpuIndex>(
    block: &mut Block,
    tree: &T,
    n: u32,
    q: &[f32],
    list: &mut GpuKnnList,
    scratch: &mut Scratch,
    opts: &KernelOptions,
    sequential: bool,
    level: u32,
) -> Result<bool, KernelError> {
    let range = checked_leaf_points(tree, n)?;
    block.set_phase(Phase::LeafScan);
    fetch_leaf(block, tree, n, opts.layout, sequential, level);
    let len = range.len();
    scratch.leaf.clear();
    // Metering is a function of (len, cost) only; the distances themselves
    // come from the index's leaf sweep, which streams the packed arena block
    // when one is attached and gathers (exactly as this loop used to)
    // otherwise. Counters and values are identical either way.
    let dc = dist_cost(tree.dims());
    block.par_for(len, dc, |_| {});
    tree.leaf_sweep(n, q, &scratch.dk, &mut scratch.leaf);
    // Computed distances pass through the fault injector. Without an attached
    // fault state `fault_f32` is the identity and meters nothing, so the
    // sweep is skipped wholesale on the fault-free path.
    if block.has_faults() {
        for entry in &mut scratch.leaf {
            entry.0 = block.fault_f32(entry.0);
        }
    }
    block.set_phase(Phase::ResultMerge);
    let mut changed = false;
    for &(d, id) in &scratch.leaf {
        changed |= list.offer(block, d, id);
    }
    Ok(changed)
}

/// Compute MINDIST (and optionally MAXDIST and the anchor distance) for every
/// child of internal node `n` into the sweep buffers, metered as one
/// data-parallel sweep whose per-item cost comes from the index's node shape.
///
/// `with_anchor` asks the sweep for the representative-point distances the
/// descent uses as its tie-break — packed-arena sweeps derive them from the
/// same center distance as the bounds, so requesting them up front is free
/// where computing them per-child later would gather again.
pub(crate) fn child_distances<T: GpuIndex>(
    block: &mut Block,
    tree: &T,
    n: u32,
    q: &[f32],
    with_max: bool,
    with_anchor: bool,
    scratch: &mut Scratch,
) {
    let cnt = tree.children(n).len();
    scratch.sweep.clear();
    let cost = tree.child_eval_cost(with_max);
    // Metering depends only on (cnt, cost); values come from the index sweep
    // (packed arena stream, or the same per-child gather as the historical
    // loop body).
    block.par_for(cnt, cost, |_| {});
    tree.child_sweep(n, q, &scratch.dk, with_max, with_anchor, &mut scratch.sweep);
    // Loaded child volumes pass through the fault injector: a flipped bound
    // is how an ECC event on the node payload reaches the pruning decisions.
    // Skipped wholesale when no fault state is attached (identity, no meter).
    if block.has_faults() {
        for v in &mut scratch.sweep.min_d {
            *v = block.fault_f32(*v);
        }
        for v in &mut scratch.sweep.max_d {
            *v = block.fault_f32(*v);
        }
    }
}

/// The k-th smallest MAXDIST bound (Algorithm 1 line 14): an upper bound on the
/// k-th nearest neighbor distance, valid because each of the k nearest child
/// subtrees contains at least one point no farther than its MAXDIST.
/// Only callable when the node has at least k children. `tmp` is pooled
/// scratch; the selected element is the same one a full `total_cmp` sort would
/// put at position `k - 1` (equal keys are bit-identical under a total order).
pub(crate) fn kth_maxdist(block: &mut Block, max_d: &[f32], k: usize, tmp: &mut Vec<f32>) -> f32 {
    debug_assert!(max_d.len() >= k && k >= 1);
    block.par_kth_select(max_d.len(), k);
    tmp.clear();
    tmp.extend_from_slice(max_d);
    let (_, kth, _) = tmp.select_nth_unstable_by(k - 1, f32::total_cmp);
    *kth
}
