//! Parallel Scan and Backtrack — Algorithm 1 of the paper.
//!
//! One thread block processes one query:
//!
//! 1. **Initial descent** (`getInitialPruningDistance`): greedily follow the
//!    child with the smallest MINDIST to a leaf and prime the k-best list —
//!    this makes the pruning distance finite before the sweep starts.
//! 2. **Sweep**: restart from the root and descend to the *leftmost* child
//!    whose MINDIST is inside the pruning distance and whose subtree still
//!    contains unvisited leaves (`subtreeMaxLeafId > visitedLeafId`). At every
//!    internal node all child MINDIST/MAXDISTs are computed data-parallel, and
//!    the k-th smallest MAXDIST tightens the pruning distance (each of the k
//!    closest children is guaranteed to contain a point within its MAXDIST).
//! 3. **Leaf scan**: process the leaf; while the k-best list keeps changing,
//!    step to the right sibling leaf (leaves are contiguous in memory — this is
//!    the linear scan that buys PSB its coalesced accesses). When a leaf stops
//!    improving the result, backtrack through the parent link.
//! 4. Terminate when backtracking pops past the root.
//!
//! The sweep's `visitedLeafId` cursor is monotone, so no leaf is processed
//! twice, and a leaf is only ever skipped when its subtree MINDIST is outside
//! the pruning distance at skip time — which can only shrink afterwards, so the
//! skip stays justified and the result is exact.

use psb_gpu::{DeviceConfig, FaultState, KernelStats, NoopSink, Phase, TraceSink};
use psb_sstree::Neighbor;

use crate::error::KernelError;
use crate::index::GpuIndex;

use super::{
    checked_children, checked_leaf_id, checked_node, checked_root, child_distances,
    effective_metering, fetch_internal, kernel_block, kth_maxdist, leftmost_qualifying,
    process_leaf, Budget, Scratch,
};
use crate::knnlist::GpuKnnList;
use crate::options::{KernelOptions, Metering};

/// Runs one PSB query on a simulated block; returns exact kNN plus counters.
///
/// Trusted-tree entry point: panics if the hardened kernel reports an error
/// (which a validated tree and a fault-free device can never produce). Use
/// [`psb_try_query`] to handle corruption or injected faults.
pub fn psb_query<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> (Vec<Neighbor>, KernelStats) {
    psb_query_traced(tree, q, k, cfg, opts, &mut NoopSink)
}

/// [`psb_query`] with every metering call mirrored into `sink`. Tracing is
/// observation-only: the neighbors and counters are bit-identical to the
/// untraced run.
pub fn psb_query_traced<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    sink: &mut dyn TraceSink,
) -> (Vec<Neighbor>, KernelStats) {
    psb_try_query(tree, q, k, cfg, opts, None, sink)
        .unwrap_or_else(|e| panic!("PSB kernel failed on a trusted tree: {e}"))
}

/// The hardened PSB kernel: bounds-checks every structural link it follows,
/// runs under a traversal step budget, polls the device fault flags at each
/// step, and reports failure as a typed [`KernelError`] instead of panicking
/// or hanging. With `faults: None` and a valid tree this is bit-identical to
/// the original kernel (the checks meter nothing).
#[allow(clippy::too_many_arguments)]
pub fn psb_try_query<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    faults: Option<FaultState>,
    sink: &mut dyn TraceSink,
) -> Result<(Vec<Neighbor>, KernelStats), KernelError> {
    assert_eq!(q.len(), tree.dims(), "query dimensionality mismatch");
    assert!(k >= 1, "k must be at least 1");
    // One launch-time dispatch monomorphizes the whole traversal for the
    // metering mode — no per-load branch anywhere in the hot loop.
    super::with_scratch(tree.dims(), opts.lanes, |scratch| {
        match effective_metering(opts, &faults) {
            Metering::Simulated => {
                psb_try_query_with::<T, true>(tree, q, k, cfg, opts, faults, sink, scratch, false)
            }
            Metering::Off => {
                psb_try_query_with::<T, false>(tree, q, k, cfg, opts, faults, sink, scratch, false)
            }
        }
    })
}

/// [`psb_query`] through the throughput kernel ([`psb_try_query_replay`]):
/// trusted-tree entry point for the scheduled engine.
pub(crate) fn psb_query_replay<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> (Vec<Neighbor>, KernelStats) {
    psb_try_query_replay(tree, q, k, cfg, opts, None, &mut NoopSink)
        .unwrap_or_else(|e| panic!("PSB kernel failed on a trusted tree: {e}"))
}

/// The throughput engine's PSB kernel ([`psb_try_query`] plus the sweep-replay
/// memo): phase-2 internal-node revisits replay the first visit's stored
/// MINDISTs and k-th-MAXDIST bound instead of recomputing them, with identical
/// metering — results and counters are bit-identical to [`psb_try_query`]
/// (`tests/schedule_parity.rs`). The memo is bypassed whenever a fault state is
/// attached: injected bit-flips draw from a per-load RNG stream, so a replayed
/// value would diverge from the reference kernel's.
#[allow(clippy::too_many_arguments)]
pub(crate) fn psb_try_query_replay<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    faults: Option<FaultState>,
    sink: &mut dyn TraceSink,
) -> Result<(Vec<Neighbor>, KernelStats), KernelError> {
    assert_eq!(q.len(), tree.dims(), "query dimensionality mismatch");
    assert!(k >= 1, "k must be at least 1");
    super::with_scratch(tree.dims(), opts.lanes, |scratch| {
        match effective_metering(opts, &faults) {
            Metering::Simulated => {
                psb_try_query_with::<T, true>(tree, q, k, cfg, opts, faults, sink, scratch, true)
            }
            Metering::Off => {
                psb_try_query_with::<T, false>(tree, q, k, cfg, opts, faults, sink, scratch, true)
            }
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn psb_try_query_with<T: GpuIndex, const M: bool>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    faults: Option<FaultState>,
    sink: &mut dyn TraceSink,
    scratch: &mut Scratch,
    replay: bool,
) -> Result<(Vec<Neighbor>, KernelStats), KernelError> {
    let mut block = kernel_block::<M>(opts, cfg, sink);
    block.set_faults(faults);
    // The memo only serves the fault-free path: injected faults perturb each
    // computed value through a per-load RNG stream, which a replay would skip.
    let replay = replay && !block.has_faults();
    if replay {
        scratch.memo.begin_query(tree.num_nodes());
    }
    let mut budget = Budget::for_tree(tree);
    // Static shared memory: the per-child MINDIST/MAXDIST arrays of Algorithm 1
    // plus a warp-reduction scratch line (fused blocks size the line to their
    // actual thread count).
    let static_smem = 2 * tree.degree() as u64 * 4 + block.threads() as u64 * 4;
    block
        .reserve_shared(static_smem, cfg.smem_per_sm)
        .map_err(|needed| KernelError::SmemOverflow { needed, limit: cfg.smem_per_sm })?;
    let mut list = GpuKnnList::new(k, opts.smem_policy, &mut block, cfg.smem_per_sm);
    let mut pruning = f32::INFINITY;

    // ---- Phase 1: initial greedy descent. ----
    block.set_phase(Phase::Descend);
    let mut n = checked_root(tree)?;
    let mut level = 0u32;
    while !tree.is_leaf(n) {
        budget.tick(&block)?;
        let kids = checked_children(tree, n)?;
        fetch_internal(&mut block, tree, n, opts.layout, level);
        // The anchor distances ride along in the same sweep (on a packed
        // arena they reuse the very center distance the bounds came from).
        child_distances(&mut block, tree, n, q, false, true, scratch);
        block.par_reduce(scratch.sweep.min_d.len(), 2);
        // Pick the child nearest the query. MINDIST alone ties at 0 whenever
        // several child spheres overlap the query (common for the oversized
        // boundary spheres Hilbert packing creates), and a bad tie-break lands
        // the initial descent in a garbage leaf whose k-th distance is huge —
        // so break ties by centroid distance, matching the paper's "leaf node
        // which is closest to the query point".
        let mut best = (f32::INFINITY, f32::INFINITY);
        let mut best_c = kids.start;
        for (i, c) in kids.enumerate() {
            let key = (scratch.sweep.min_d[i], scratch.sweep.anchor_d[i]);
            if key < best {
                best = key;
                best_c = c;
            }
        }
        n = best_c;
        level += 1;
    }
    budget.tick(&block)?;
    process_leaf(&mut block, tree, n, q, &mut list, scratch, opts, false, level)?;
    pruning = pruning.min(list.bound());

    // ---- Phase 2: the left-to-right sweep. ----
    let last_leaf = (tree.num_leaves() - 1) as u32;
    let mut visited: i64 = -1;
    n = tree.root();
    level = 0;
    'sweep: loop {
        // Descend to the leftmost qualifying leaf (or backtrack when none).
        while !tree.is_leaf(n) {
            budget.tick(&block)?;
            block.set_phase(Phase::Descend);
            let kids = checked_children(tree, n)?;
            fetch_internal(&mut block, tree, n, opts.layout, level);
            // The sweep values (child MINDISTs, k-th MAXDIST bound) depend
            // only on (node, query), so a revisit after a backtrack replays
            // the first visit's stored values under identical metering
            // instead of recomputing them.
            let chosen = match if replay { scratch.memo.entry(n) } else { None } {
                Some(hit) => {
                    block.par_for(kids.len(), tree.child_eval_cost(opts.use_minmax_prune), |_| {});
                    if let Some(bound) = hit.bound {
                        block.par_kth_select(kids.len(), k);
                        pruning = pruning.min(bound);
                    }
                    let min_d = scratch.memo.values(hit);
                    leftmost_qualifying(&mut block, tree, kids, min_d, pruning, visited)
                }
                None => {
                    child_distances(&mut block, tree, n, q, opts.use_minmax_prune, false, scratch);
                    let bound = if opts.use_minmax_prune && scratch.sweep.max_d.len() >= k {
                        let b = kth_maxdist(&mut block, &scratch.sweep.max_d, k, &mut scratch.kth);
                        pruning = pruning.min(b);
                        Some(b)
                    } else {
                        None
                    };
                    if replay {
                        let Scratch { memo, sweep, .. } = &mut *scratch;
                        memo.store(n, &sweep.min_d, bound);
                    }
                    leftmost_qualifying(
                        &mut block,
                        tree,
                        kids,
                        &scratch.sweep.min_d,
                        pruning,
                        visited,
                    )
                }
            };
            match chosen {
                Some(c) => {
                    n = c;
                    level += 1;
                }
                None => {
                    // No child qualifies: every leaf under `n` is now either
                    // visited or pruned with justification (each child was
                    // rejected for `subtreeMaxLeafId <= visited` or
                    // `MINDIST >= pruning`, and pruning only shrinks). Advance
                    // the cursor past the whole subtree — without this the
                    // parent would re-select `n` forever, since `n`'s own
                    // MINDIST can be inside the pruning distance even when no
                    // child's is.
                    visited = visited.max(tree.subtree_max_leaf(n) as i64);
                    if n == tree.root() {
                        break 'sweep;
                    }
                    block.set_phase(Phase::Backtrack);
                    block.backtrack(level);
                    block.scalar(1); // follow the parent link
                    n = checked_node(tree, "parent", n, tree.parent(n))?;
                    level = level.checked_sub(1).ok_or(KernelError::CorruptNode {
                        node: n,
                        detail: "parent chain deeper than the descent that reached it",
                    })?;
                }
            }
        }

        // Leaf phase: linear scan of sibling leaves while they improve.
        let mut via_sibling = false;
        loop {
            budget.tick(&block)?;
            let changed =
                process_leaf(&mut block, tree, n, q, &mut list, scratch, opts, via_sibling, level)?;
            pruning = pruning.min(list.bound());
            let lid = checked_leaf_id(tree, n)?;
            visited = lid as i64;
            if opts.leaf_scan && changed && lid < last_leaf {
                block.set_phase(Phase::LeafScan);
                block.scalar(1); // follow the right-sibling link
                n = checked_node(tree, "leaf_node_of", n, tree.leaf_node_of(lid + 1))?;
                via_sibling = true; // contiguous leaves: a prefetchable stream
            } else if n == tree.root() {
                // Single-leaf tree: nothing to backtrack to.
                break 'sweep;
            } else {
                block.set_phase(Phase::Backtrack);
                block.backtrack(level);
                block.scalar(1); // follow the parent link
                n = checked_node(tree, "parent", n, tree.parent(n))?;
                level = level.checked_sub(1).ok_or(KernelError::CorruptNode {
                    node: n,
                    detail: "parent chain deeper than the descent that reached it",
                })?;
                break;
            }
        }
    }

    // Final poll: a fault in the last leaf processed would otherwise slip
    // past the loop-head checks and reach the caller as a silent result.
    if let Some(fault) = block.device_fault() {
        return Err(fault.into());
    }
    Ok((list.into_sorted(), block.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_data::{sample_queries, ClusteredSpec};
    use psb_geom::PointSet;
    use psb_sstree::{build, linear_knn, BuildMethod, SsTree};

    fn setup(dims: usize, sigma: f32, degree: usize) -> (PointSet, SsTree) {
        let ps = ClusteredSpec { clusters: 6, points_per_cluster: 350, dims, sigma, seed: 11 }
            .generate();
        let tree = build(&ps, degree, &BuildMethod::Hilbert);
        (ps, tree)
    }

    fn assert_exact(tree: &SsTree, ps: &PointSet, q: &[f32], k: usize, opts: &KernelOptions) {
        let cfg = DeviceConfig::k40();
        let (got, _) = psb_query(tree, q, k, &cfg, opts);
        let want = linear_knn(ps, q, k);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            let scale = w.dist.max(1.0);
            assert!((g.dist - w.dist).abs() <= scale * 1e-4, "got {} want {}", g.dist, w.dist);
        }
    }

    #[test]
    fn exact_on_clustered_data() {
        let (ps, tree) = setup(4, 150.0, 16);
        let opts = KernelOptions::default();
        for q in sample_queries(&ps, 25, 0.01, 3).iter() {
            assert_exact(&tree, &ps, q, 8, &opts);
        }
    }

    #[test]
    fn exact_without_minmax_pruning() {
        let (ps, tree) = setup(4, 150.0, 16);
        let opts = KernelOptions { use_minmax_prune: false, ..Default::default() };
        for q in sample_queries(&ps, 10, 0.01, 4).iter() {
            assert_exact(&tree, &ps, q, 8, &opts);
        }
    }

    #[test]
    fn exact_without_leaf_scan() {
        let (ps, tree) = setup(4, 150.0, 16);
        let opts = KernelOptions { leaf_scan: false, ..Default::default() };
        for q in sample_queries(&ps, 10, 0.01, 5).iter() {
            assert_exact(&tree, &ps, q, 8, &opts);
        }
    }

    #[test]
    fn exact_in_high_dimensions() {
        let (ps, tree) = setup(32, 400.0, 32);
        let opts = KernelOptions::default();
        for q in sample_queries(&ps, 6, 0.01, 6).iter() {
            assert_exact(&tree, &ps, q, 16, &opts);
        }
    }

    #[test]
    fn exact_with_k_exceeding_degree() {
        // k > node degree disables the MINMAXDIST bound; still exact.
        let (ps, tree) = setup(3, 100.0, 8);
        let opts = KernelOptions::default();
        for q in sample_queries(&ps, 5, 0.01, 7).iter() {
            assert_exact(&tree, &ps, q, 50, &opts);
        }
    }

    #[test]
    fn exact_on_single_leaf_tree() {
        let mut ps = PointSet::new(2);
        for i in 0..10 {
            ps.push(&[i as f32, 0.0]);
        }
        let tree = build(&ps, 128, &BuildMethod::Hilbert);
        assert_exact(&tree, &ps, &[3.2, 0.0], 3, &KernelOptions::default());
    }

    #[test]
    fn stats_are_populated() {
        let (ps, tree) = setup(4, 150.0, 16);
        let cfg = DeviceConfig::k40();
        let q = sample_queries(&ps, 1, 0.01, 8);
        let (_, stats) = psb_query(&tree, q.point(0), 8, &cfg, &KernelOptions::default());
        assert!(stats.nodes_visited >= 2, "must visit at least root + a leaf");
        assert!(stats.global_bytes > 0);
        assert!(stats.warp_efficiency() > 0.0 && stats.warp_efficiency() <= 1.0);
        assert!(stats.smem_peak_bytes > 0);
    }

    #[test]
    fn visits_fewer_bytes_than_whole_dataset_on_tight_clusters() {
        let (ps, tree) = setup(4, 20.0, 16);
        let cfg = DeviceConfig::k40();
        // Jitter must stay inside the sigma=20 cluster radius, or the true kNN
        // ball legitimately spans many leaves (space is 65 536 wide, so even
        // 0.5% jitter is ~330 units).
        let q = sample_queries(&ps, 1, 0.0001, 9);
        let (_, stats) = psb_query(&tree, q.point(0), 8, &cfg, &KernelOptions::default());
        // The budget below allows for the home cluster's leaves plus PSB's
        // stackless parent refetches (each backtrack re-reads an internal
        // node); on this 6-cluster micro dataset that lands between 1/3 and
        // 3/5 of the raw data volume depending on where the sampled query
        // falls. Pruning failure would read essentially all of it (plus the
        // internal-node overhead), so 2/3 separates the regimes robustly.
        assert!(
            stats.global_bytes < ps.bytes() * 2 / 3,
            "PSB read {} of {} dataset bytes — pruning is not working",
            stats.global_bytes,
            ps.bytes()
        );
    }

    #[test]
    fn query_on_data_point_finds_itself() {
        let (ps, tree) = setup(2, 60.0, 16);
        let cfg = DeviceConfig::k40();
        let q = ps.point(321).to_vec();
        let (got, _) = psb_query(&tree, &q, 1, &cfg, &KernelOptions::default());
        assert!(got[0].dist <= 1e-6);
        assert_eq!(got[0].id, 321);
    }
}
