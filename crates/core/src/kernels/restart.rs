//! Scan-and-Restart: the stackless alternative without parent links.
//!
//! The paper's §II-A and §VI discuss restart-style traversals (kd-restart,
//! MPRS): instead of backtracking through parent links, the traversal returns
//! to the **root** whenever it runs out of qualifying siblings and re-descends
//! with the monotone `visitedLeafId` cursor. Compared to PSB this trades
//! parent-link refetches for full root-to-leaf re-descents — cheap on shallow
//! n-ary trees, increasingly expensive as the tree deepens. Implemented here so
//! the trade-off the paper argues about is measurable (`figures ablation` and
//! the shape tests exercise it).
//!
//! Exactness argument is identical to PSB's: the cursor only advances past
//! leaves that are visited or provably outside the pruning distance.

use psb_gpu::{DeviceConfig, FaultState, KernelStats, NodeKind, NoopSink, Phase, TraceSink};
use psb_sstree::Neighbor;

use crate::error::KernelError;
use crate::index::{GpuIndex, NO_ROPE};

use super::{
    checked_children, checked_leaf_id, checked_node, checked_root, checked_rope, child_distances,
    effective_metering, fetch_internal, kth_maxdist, node_min_dist, process_leaf, Budget, Scratch,
};
use crate::knnlist::GpuKnnList;
use crate::options::{KernelOptions, Metering};

/// Runs one scan-and-restart query on a simulated block.
///
/// Trusted-tree entry point: panics on a [`KernelError`]. Use
/// [`restart_try_query`] to handle corruption or injected faults.
pub fn restart_query<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> (Vec<Neighbor>, KernelStats) {
    restart_query_traced(tree, q, k, cfg, opts, &mut NoopSink)
}

/// [`restart_query`] with every metering call mirrored into `sink`; results
/// and counters are bit-identical to the untraced run.
pub fn restart_query_traced<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    sink: &mut dyn TraceSink,
) -> (Vec<Neighbor>, KernelStats) {
    restart_try_query(tree, q, k, cfg, opts, None, sink)
        .unwrap_or_else(|e| panic!("restart kernel failed on a trusted tree: {e}"))
}

/// The hardened scan-and-restart kernel: typed errors instead of panics or
/// hangs under corruption or injected device faults. Bit-identical to the
/// original with `faults: None` on a valid tree.
#[allow(clippy::too_many_arguments)]
pub fn restart_try_query<T: GpuIndex>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    faults: Option<FaultState>,
    sink: &mut dyn TraceSink,
) -> Result<(Vec<Neighbor>, KernelStats), KernelError> {
    assert_eq!(q.len(), tree.dims(), "query dimensionality mismatch");
    assert!(k >= 1, "k must be at least 1");
    super::with_scratch(tree.dims(), opts.lanes, |scratch| {
        match effective_metering(opts, &faults) {
            Metering::Simulated => {
                restart_try_query_with::<T, true>(tree, q, k, cfg, opts, faults, sink, scratch)
            }
            Metering::Off => {
                restart_try_query_with::<T, false>(tree, q, k, cfg, opts, faults, sink, scratch)
            }
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn restart_try_query_with<T: GpuIndex, const M: bool>(
    tree: &T,
    q: &[f32],
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    faults: Option<FaultState>,
    sink: &mut dyn TraceSink,
    scratch: &mut Scratch,
) -> Result<(Vec<Neighbor>, KernelStats), KernelError> {
    let mut block = super::kernel_block::<M>(opts, cfg, sink);
    block.set_faults(faults);
    let mut budget = Budget::for_tree(tree);
    let static_smem = 2 * tree.degree() as u64 * 4 + block.threads() as u64 * 4;
    block
        .reserve_shared(static_smem, cfg.smem_per_sm)
        .map_err(|needed| KernelError::SmemOverflow { needed, limit: cfg.smem_per_sm })?;
    let mut list = GpuKnnList::new(k, opts.smem_policy, &mut block, cfg.smem_per_sm);
    let mut pruning = f32::INFINITY;

    // Initial greedy descent primes the pruning distance (same as PSB).
    block.set_phase(Phase::Descend);
    let mut n = checked_root(tree)?;
    let mut level = 0u32;
    while !tree.is_leaf(n) {
        budget.tick(&block)?;
        let kids = checked_children(tree, n)?;
        fetch_internal(&mut block, tree, n, opts.layout, level);
        child_distances(&mut block, tree, n, q, false, true, scratch);
        block.par_reduce(scratch.sweep.min_d.len(), 2);
        // Pick the child nearest the query. MINDIST alone ties at 0 whenever
        // several child spheres overlap the query (common for the oversized
        // boundary spheres Hilbert packing creates), and a bad tie-break lands
        // the initial descent in a garbage leaf whose k-th distance is huge —
        // so break ties by centroid distance, matching the paper's "leaf node
        // which is closest to the query point".
        let mut best = (f32::INFINITY, f32::INFINITY);
        let mut best_c = kids.start;
        for (i, c) in kids.enumerate() {
            let key = (scratch.sweep.min_d[i], scratch.sweep.anchor_d[i]);
            if key < best {
                best = key;
                best_c = c;
            }
        }
        n = best_c;
        level += 1;
    }
    budget.tick(&block)?;
    process_leaf(&mut block, tree, n, q, &mut list, scratch, opts, false, level)?;
    pruning = pruning.min(list.bound());

    // Rope mode (DESIGN.md §18): instead of restarting from the root, follow
    // the escape links — one preorder pass with no re-descents and no
    // `visitedLeafId` cursor. Each arriving node evaluates its own volume;
    // qualifying internal nodes fall through to their first child, everything
    // else ropes to the next subtree. The primed leaf is revisited once, which
    // is harmless: the k-best list rejects exact duplicates. Exact for the
    // same reason the restart sweep is — a subtree is skipped only when its
    // MINDIST is at least the (monotone) pruning distance.
    if opts.rope {
        let mut m = tree.root();
        loop {
            budget.tick(&block)?;
            block.set_phase(Phase::Descend);
            let qualifies = m == tree.root() || node_min_dist(&mut block, tree, m, q) < pruning;
            let next = if !qualifies {
                block.set_phase(Phase::Backtrack);
                checked_rope(&mut block, tree, m)?
            } else if tree.is_leaf(m) {
                process_leaf(
                    &mut block,
                    tree,
                    m,
                    q,
                    &mut list,
                    scratch,
                    opts,
                    false,
                    tree.node_depth(m),
                )?;
                pruning = pruning.min(list.bound());
                block.set_phase(Phase::Backtrack);
                checked_rope(&mut block, tree, m)?
            } else {
                block.visit_node(tree.node_depth(m), NodeKind::Internal);
                checked_children(tree, m)?.start
            };
            if next == NO_ROPE {
                break;
            }
            m = next;
        }
        if let Some(fault) = block.device_fault() {
            return Err(fault.into());
        }
        return Ok((list.into_sorted(), block.finish()));
    }

    let last_leaf = (tree.num_leaves() - 1) as u32;
    let mut visited: i64 = -1;
    'restart: loop {
        // Full descent from the root toward the leftmost qualifying leaf.
        n = tree.root();
        level = 0;
        while !tree.is_leaf(n) {
            budget.tick(&block)?;
            block.set_phase(Phase::Descend);
            let kids = checked_children(tree, n)?;
            fetch_internal(&mut block, tree, n, opts.layout, level);
            child_distances(&mut block, tree, n, q, opts.use_minmax_prune, false, scratch);
            if opts.use_minmax_prune && scratch.sweep.max_d.len() >= k {
                let bound = kth_maxdist(&mut block, &scratch.sweep.max_d, k, &mut scratch.kth);
                pruning = pruning.min(bound);
            }
            // Parallel predicate + ballot/ffs selection (see psb.rs).
            block.par_for(kids.len(), 1, |_| {});
            block.par_reduce(kids.len(), 1);
            block.scalar(2);
            let mut chosen = None;
            for (i, c) in kids.clone().enumerate() {
                if scratch.sweep.min_d[i] < pruning && tree.subtree_max_leaf(c) as i64 > visited {
                    chosen = Some(c);
                    break;
                }
            }
            match chosen {
                Some(c) => {
                    n = c;
                    level += 1;
                }
                None => {
                    // Everything under `n` is visited or justifiably pruned.
                    visited = visited.max(tree.subtree_max_leaf(n) as i64);
                    if n == tree.root() {
                        break 'restart;
                    }
                    block.backtrack(level); // restart = backtrack all the way up
                    continue 'restart; // no parent link: go back to the root
                }
            }
        }
        // Linear scan of sibling leaves while they improve (same as PSB).
        let mut via_sibling = false;
        loop {
            budget.tick(&block)?;
            let changed =
                process_leaf(&mut block, tree, n, q, &mut list, scratch, opts, via_sibling, level)?;
            pruning = pruning.min(list.bound());
            let lid = checked_leaf_id(tree, n)?;
            visited = lid as i64;
            if opts.leaf_scan && changed && lid < last_leaf {
                block.set_phase(Phase::LeafScan);
                block.scalar(1);
                n = checked_node(tree, "leaf_node_of", n, tree.leaf_node_of(lid + 1))?;
                via_sibling = true;
            } else if n == tree.root() {
                break 'restart; // single-leaf tree
            } else {
                block.backtrack(level);
                continue 'restart;
            }
        }
    }

    // Final poll: a fault in the last leaf processed would otherwise slip
    // past the loop-head checks and reach the caller as a silent result.
    if let Some(fault) = block.device_fault() {
        return Err(fault.into());
    }
    Ok((list.into_sorted(), block.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::psb::psb_query;
    use psb_data::{sample_queries, ClusteredSpec};
    use psb_geom::PointSet;
    use psb_sstree::{build, linear_knn, BuildMethod, SsTree};

    fn setup() -> (PointSet, SsTree) {
        let ps =
            ClusteredSpec { clusters: 6, points_per_cluster: 300, dims: 6, sigma: 140.0, seed: 91 }
                .generate();
        let tree = build(&ps, 16, &BuildMethod::Hilbert);
        (ps, tree)
    }

    #[test]
    fn exact_against_oracle() {
        let (ps, tree) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        for q in sample_queries(&ps, 15, 0.01, 92).iter() {
            let (got, _) = restart_query(&tree, q, 10, &cfg, &opts);
            let want = linear_knn(&ps, q, 10);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!((g.dist - w.dist).abs() <= w.dist.max(1.0) * 1e-4);
            }
        }
    }

    #[test]
    fn matches_psb_distances() {
        let (ps, tree) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        for q in sample_queries(&ps, 10, 0.01, 93).iter() {
            let (a, _) = restart_query(&tree, q, 8, &cfg, &opts);
            let (b, _) = psb_query(&tree, q, 8, &cfg, &opts);
            for (x, y) in a.iter().zip(&b) {
                assert!((x.dist - y.dist).abs() <= y.dist.max(1.0) * 1e-4);
            }
        }
    }

    #[test]
    fn rope_mode_matches_stacked_bitwise() {
        let (ps, tree) = setup();
        let cfg = DeviceConfig::k40();
        let stacked = KernelOptions::default();
        let rope = KernelOptions { rope: true, ..Default::default() };
        for q in sample_queries(&ps, 12, 0.01, 96).iter() {
            let (a, _) = restart_query(&tree, q, 8, &cfg, &stacked);
            let (b, sb) = restart_query(&tree, q, 8, &cfg, &rope);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                assert_eq!(x.id, y.id);
            }
            // The only backtracks left are the rope hops' phase tags; the
            // re-descent machinery is gone.
            assert!(sb.nodes_visited > 0);
        }
    }

    #[test]
    fn restarts_cost_more_upper_level_fetches_than_psb() {
        // On a loose dataset (lots of backtracking) the restart variant must
        // fetch at least as many node bytes as PSB: each restart re-reads the
        // root path that PSB's parent links skip.
        let ps = ClusteredSpec {
            clusters: 6,
            points_per_cluster: 300,
            dims: 6,
            sigma: 4000.0,
            seed: 94,
        }
        .generate();
        let tree = build(&ps, 8, &BuildMethod::Hilbert); // deep tree amplifies it
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let queries = sample_queries(&ps, 10, 0.02, 95);
        let mut restart_nodes = 0u64;
        let mut psb_nodes = 0u64;
        for q in queries.iter() {
            restart_nodes += restart_query(&tree, q, 8, &cfg, &opts).1.nodes_visited;
            psb_nodes += psb_query(&tree, q, 8, &cfg, &opts).1.nodes_visited;
        }
        assert!(restart_nodes >= psb_nodes, "restart visited {restart_nodes} < psb {psb_nodes}");
    }

    #[test]
    fn exact_on_single_leaf_tree() {
        let mut ps = PointSet::new(2);
        for i in 0..9 {
            ps.push(&[i as f32, 0.0]);
        }
        let tree = build(&ps, 64, &BuildMethod::Hilbert);
        let cfg = DeviceConfig::k40();
        let (got, _) = restart_query(&tree, &[4.2, 0.0], 2, &cfg, &KernelOptions::default());
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].id, 4);
    }
}
