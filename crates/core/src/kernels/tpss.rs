//! Task-parallel SS-tree search: one query per lane over the *same* tree the
//! data-parallel kernels use — the Fig. 1(b) strawman made measurable.
//!
//! The paper's central argument (§II-B) is that assigning one query to each
//! GPU thread wastes the machine: every lane follows its own search path, so
//! lanes of a warp diverge and every node fetch is an uncoalesced pointer
//! chase. This kernel exists so the comparison is apples-to-apples: same
//! SS-tree, same pruning bounds, only the parallelization strategy differs.
//!
//! Each lane runs a best-first branch-and-bound with a private traversal stack
//! in local memory, stepping one operation per lockstep round
//! (see [`psb_gpu::task`]).

use psb_geom::{dist, PointSet};

use crate::error::{EngineError, KernelError};
use crate::index::GpuIndex;
use psb_gpu::{run_task_parallel_traced, DeviceConfig, KernelStats, LaneStep, NoopSink, TraceSink};
use psb_sstree::Neighbor;

use crate::dist_cost;
use crate::kernels::step_budget;

/// Operation tags (distinct tags in one warp serialize). The values follow
/// the [`psb_gpu::op_phase`] convention, so the scheduler attributes each
/// tag's issues and loads to the matching traversal phase.
const OP_INTERNAL: u32 = 0;
const OP_LEAF: u32 = 1;
const OP_POP: u32 = 2;

struct Lane<'a, T: GpuIndex> {
    tree: &'a T,
    q: &'a [f32],
    k: usize,
    /// Deferred subtrees: (node, MINDIST at push time), unsorted stack.
    stack: Vec<(u32, f32)>,
    cursor: u32,
    has_cursor: bool,
    best: Vec<Neighbor>,
    done: bool,
    /// Per-lane step counter against `step_limit` — the corruption-induced-
    /// loop backstop for the task-parallel traversal.
    steps: u64,
    step_limit: u64,
    /// Set when the lane hits corruption; the lane halts and the batch entry
    /// point reports it.
    error: Option<KernelError>,
}

impl<T: GpuIndex> Lane<'_, T> {
    fn bound(&self) -> f32 {
        if self.best.len() >= self.k {
            self.best.last().map_or(f32::INFINITY, |n| n.dist)
        } else {
            f32::INFINITY
        }
    }

    fn offer(&mut self, d: f32, id: u32) {
        // NaN would land at an arbitrary partition point and corrupt the
        // sorted order; a NaN distance can only come from corrupt geometry.
        if d.is_nan() {
            return;
        }
        if self.best.len() >= self.k && d >= self.bound() {
            return;
        }
        let pos = self.best.partition_point(|n| (n.dist, n.id) < (d, id));
        self.best.insert(pos, Neighbor { dist: d, id });
        if self.best.len() > self.k {
            self.best.pop();
        }
    }

    /// Halt the lane with a typed error.
    fn fail(&mut self, e: KernelError) -> Option<LaneStep> {
        self.error = Some(e);
        self.done = true;
        None
    }

    fn step(&mut self) -> Option<LaneStep> {
        if self.done {
            return None;
        }
        self.steps += 1;
        if self.steps > self.step_limit {
            return self.fail(KernelError::StepBudgetExceeded { budget: self.step_limit });
        }
        if !self.has_cursor {
            match self.stack.pop() {
                None => {
                    self.done = true;
                    return None;
                }
                Some((node, min_d)) => {
                    if min_d < self.bound() {
                        self.cursor = node;
                        self.has_cursor = true;
                    }
                    return Some(LaneStep { op: OP_POP, cost: 3, global_bytes: 0 });
                }
            }
        }
        let n = self.cursor;
        self.has_cursor = false;
        let tree = self.tree;
        if n as usize >= tree.num_nodes() {
            return self.fail(KernelError::LinkOutOfBounds {
                link: "node",
                node: n,
                target: n as u64,
                limit: tree.num_nodes() as u64,
            });
        }
        if tree.is_leaf(n) {
            let range = tree.leaf_points(n);
            if range.start > range.end || range.end > tree.num_points() {
                return self.fail(KernelError::LinkOutOfBounds {
                    link: "leaf_points",
                    node: n,
                    target: range.end as u64,
                    limit: tree.num_points() as u64,
                });
            }
            let count = range.len() as u64;
            for p in range {
                let d = dist(self.q, tree.point(p));
                self.offer(d, tree.point_id(p));
            }
            return Some(LaneStep {
                op: OP_LEAF,
                cost: count * dist_cost(tree.dims()) + count,
                global_bytes: tree.leaf_node_bytes(n),
            });
        }
        // Internal: compute every child MINDIST *serially in this lane* and
        // push the qualifying children (descending MINDIST so the closest pops
        // first).
        let kids = tree.children(n);
        if kids.is_empty() {
            return self.fail(KernelError::CorruptNode {
                node: n,
                detail: "internal node with no children",
            });
        }
        let limit = tree.num_nodes() as u64;
        if kids.start as u64 >= limit || kids.end as u64 > limit {
            return self.fail(KernelError::LinkOutOfBounds {
                link: "children",
                node: n,
                target: kids.end as u64,
                limit,
            });
        }
        let count = kids.len() as u64;
        let mut qualifying: Vec<(u32, f32)> = Vec::with_capacity(kids.len());
        for c in kids {
            let (d, _) = tree.child_min_max(c, self.q, false);
            if d < self.bound() {
                qualifying.push((c, d));
            }
        }
        qualifying.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        self.stack.extend(qualifying);
        Some(LaneStep {
            op: OP_INTERNAL,
            cost: count * tree.child_eval_cost(false),
            global_bytes: tree.internal_node_bytes(n),
        })
    }
}

/// Runs a batch task-parallel: queries are packed into blocks of
/// `threads_per_block` lanes. Returns per-query results and per-block stats.
pub fn tpss_batch<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    threads_per_block: u32,
) -> (Vec<Vec<Neighbor>>, Vec<KernelStats>) {
    tpss_batch_traced(tree, queries, k, cfg, threads_per_block, &mut NoopSink)
}

/// [`tpss_batch`] with every block's issue groups and loads mirrored into
/// `sink` (blocks run sequentially, so events arrive in block order). Results
/// and counters are bit-identical to the untraced run.
///
/// Trusted-tree entry point: panics if any lane reports a [`KernelError`],
/// which a validated tree can never produce. Use [`tpss_try_batch`] to handle
/// corruption per query.
pub fn tpss_batch_traced<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    threads_per_block: u32,
    sink: &mut dyn TraceSink,
) -> (Vec<Vec<Neighbor>>, Vec<KernelStats>) {
    assert!(!queries.is_empty(), "empty query batch");
    let (results, per_block) = tpss_try_batch(tree, queries, k, cfg, threads_per_block, sink)
        .unwrap_or_else(|e| panic!("task-parallel kernel rejected the batch: {e}"));
    let results = results
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("task-parallel kernel failed on a trusted tree: {e}")))
        .collect();
    (results, per_block)
}

/// Per-query fallible results plus per-block counters from the hardened
/// task-parallel batch.
pub type TpssBatchOutput = (Vec<Result<Vec<Neighbor>, KernelError>>, Vec<KernelStats>);

/// The hardened task-parallel batch: each lane carries a step budget and
/// bounds-checks every link it follows, so corruption yields a per-query
/// [`KernelError`] instead of a panic or an endless round loop. Lanes that
/// fail simply go idle; surviving lanes in the same block finish normally.
/// Bit-identical results and stats to [`tpss_batch`] on a valid tree.
pub fn tpss_try_batch<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    threads_per_block: u32,
    sink: &mut dyn TraceSink,
) -> Result<TpssBatchOutput, EngineError> {
    assert!(k >= 1);
    if queries.is_empty() {
        return Err(EngineError::EmptyBatch);
    }
    assert_eq!(queries.dims(), tree.dims());
    let tpb = threads_per_block.max(1) as usize;
    let limit = step_budget(tree);

    let mut results = Vec::with_capacity(queries.len());
    let mut per_block = Vec::new();
    let mut qi = 0usize;
    while qi < queries.len() {
        let block_n = tpb.min(queries.len() - qi);
        let mut lanes: Vec<Lane<T>> = (0..block_n)
            .map(|j| Lane {
                tree,
                q: queries.point(qi + j),
                k,
                stack: vec![(tree.root(), 0.0)],
                cursor: 0,
                has_cursor: false,
                best: Vec::with_capacity(k + 1),
                done: false,
                steps: 0,
                step_limit: limit,
                error: None,
            })
            .collect();
        let stats = run_task_parallel_traced(cfg, &mut lanes, 0, Lane::step, sink);
        per_block.push(stats);
        results.extend(lanes.into_iter().map(|l| match l.error {
            Some(e) => Err(e),
            None => Ok(l.best),
        }));
        qi += block_n;
    }
    Ok((results, per_block))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::psb_batch;
    use crate::options::KernelOptions;
    use psb_data::{sample_queries, ClusteredSpec};
    use psb_gpu::launch_blocks;
    use psb_sstree::{build, linear_knn, BuildMethod, SsTree};

    fn setup() -> (PointSet, SsTree, PointSet) {
        let ps = ClusteredSpec {
            clusters: 6,
            points_per_cluster: 400,
            dims: 8,
            sigma: 130.0,
            seed: 121,
        }
        .generate();
        let tree = build(&ps, 16, &BuildMethod::Hilbert);
        let queries = sample_queries(&ps, 64, 0.01, 122);
        (ps, tree, queries)
    }

    #[test]
    fn exact_against_oracle() {
        let (ps, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let (results, _) = tpss_batch(&tree, &queries, 10, &cfg, 32);
        for (qi, q) in queries.iter().enumerate() {
            let want = linear_knn(&ps, q, 10);
            assert_eq!(results[qi].len(), want.len());
            for (g, w) in results[qi].iter().zip(&want) {
                assert!((g.dist - w.dist).abs() <= w.dist.max(1.0) * 1e-4);
            }
        }
    }

    #[test]
    fn task_parallel_sstree_loses_like_the_paper_says() {
        // Same data, two strategies at the paper's degree (128). §II-B's claim:
        // task parallelism serializes divergent lanes and chases pointers
        // uncoalesced, so (a) per-query response time is far worse and (b) warp
        // efficiency is lower than the data-parallel kernel's. (The lockstep
        // lane model is coarser than real SIMT, so the efficiency gap here is
        // a conservative lower bound — the response-time gap is the robust
        // signal.)
        let (ps, _, queries) = setup();
        let tree128 = build(&ps, 128, &BuildMethod::Hilbert);
        let cfg = DeviceConfig::k40();
        let (_, tp_blocks) = tpss_batch(&tree128, &queries, 10, &cfg, 32);
        let tp = launch_blocks(&cfg, 1, &tp_blocks);
        let dp = psb_batch(&tree128, &queries, 10, &cfg, &KernelOptions::default()).expect("batch");
        assert!(
            tp.avg_response_ms > dp.report.avg_response_ms * 2.0,
            "task-parallel {:.4} ms vs data-parallel {:.4} ms",
            tp.avg_response_ms,
            dp.report.avg_response_ms
        );
        // Note: warp efficiency is NOT asserted here. The lockstep lane model
        // steps whole node visits as single equal-cost operations, so lanes at
        // the same operation look perfectly coherent — finer-grained
        // intra-node divergence (which real SIMT hardware pays for) is below
        // this model's resolution. The kd-tree baseline, whose per-step costs
        // genuinely differ across lanes, is where the efficiency gap shows.
    }

    #[test]
    fn uncoalesced_fetches() {
        let (_, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let (_, blocks) = tpss_batch(&tree, &queries, 4, &cfg, 32);
        let merged = crate::engine::merge_stats(&blocks);
        // Node fetches land one transaction per lane per node (pointer chase);
        // the per-byte transaction rate must exceed the coalesced rate.
        assert!(merged.global_transactions > merged.global_bytes / 128);
    }
}
