//! Kernel launch options, including the ablation switches called out in
//! DESIGN.md §7 and the throughput knobs of §12.

use psb_geom::DistLanes;
use psb_metrics::MetricsHandle;

use crate::knnlist::SharedMemPolicy;
use crate::schedule::QuerySchedule;
use crate::wave::WaveConfig;

/// Simulated memory layout of tree nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NodeLayout {
    /// Structure-of-arrays: the paper's layout; child spheres stream as one
    /// coalesced block (§V-A).
    #[default]
    Soa,
    /// Array-of-structures: every child entry is its own strided transaction.
    /// Exists to quantify why the paper chose SoA.
    Aos,
}

/// Whether a launch runs the simulated GPU cost model (DESIGN.md §17).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Metering {
    /// Full `Block` accounting: warp issues, transactions, cycles, phases,
    /// traces, fault hooks. The default — every figure in the paper
    /// reproduction reads these counters.
    #[default]
    Simulated,
    /// The zero-accounting fast path: kernels launch on an unmetered block
    /// whose counter updates compile out of the hot loop entirely
    /// (monomorphized at launch, never branched per load). Neighbors and
    /// outcomes are bit-identical to [`Metering::Simulated`]
    /// (`tests/fastpath_parity.rs`); the returned `KernelStats` stay at
    /// launch values. Serving and wall-clock bench rows run here. Launches
    /// that inject faults are forced back to [`Metering::Simulated`] —
    /// fault detection lives inside the accounting.
    Off,
}

/// Options shared by the GPU kernels.
#[derive(Clone, Debug)]
pub struct KernelOptions {
    /// Threads per block. The paper runs 32 threads over degree-128 nodes
    /// ("each processing unit ... processes four branches", §IV-D), so one warp
    /// per query is the default.
    pub threads_per_block: u32,
    /// Where the k-best list lives (§V-E).
    pub smem_policy: SharedMemPolicy,
    /// Use the k-th-MINMAXDIST bound to tighten the pruning distance at
    /// internal nodes (Algorithm 1, lines 13–15). Ablation switch.
    pub use_minmax_prune: bool,
    /// PSB's linear scan of sibling leaves (Algorithm 1, lines 39–45).
    /// Disabling it backtracks after every leaf — the ablation that shows where
    /// PSB's advantage comes from.
    pub leaf_scan: bool,
    /// Node memory layout (SoA vs AoS ablation).
    pub layout: NodeLayout,
    /// Batch execution order (DESIGN.md §12). [`QuerySchedule::Hilbert`] runs
    /// the batch in Hilbert-curve order (and routes PSB through the
    /// revisit-memoizing throughput kernel) and un-permutes every per-query
    /// output, so results and counters stay bit-identical to the default
    /// submission order.
    pub schedule: QuerySchedule,
    /// Queries fused per simulated block (1 = one block per query, the
    /// paper's configuration). With `fuse = F > 1`, F queries partition the
    /// block's 32 lanes into F lane groups — an opt-in mode for trees whose
    /// fanout is below the warp width, where a full warp per query idles most
    /// of its lanes. Must divide the warp size.
    pub fuse: u32,
    /// Telemetry sink for the batch runners: host wall-clock spans, per-batch
    /// latency histograms, and the launch report's simulated figures all land
    /// here. The default is the detached no-op handle — no clock is read, no
    /// lock taken, and every result stays bit-identical to an uninstrumented
    /// run (`tests/metrics_parity.rs`).
    pub metrics: MetricsHandle,
    /// Route batch execution through the buffer-wave node-centric engine
    /// (DESIGN.md §16): nodes own bounded query buffers, the batch descends
    /// in level-synchronous waves, and each buffered node is swept once with
    /// its fetch amortized over the buffer. `None` (the default) keeps the
    /// per-query engines. Neighbors and outcomes are bit-identical either
    /// way; `KernelStats` reflect the amortized schedule. The recovery
    /// runners ignore this under a real fault plan (the wave engine serves
    /// the fault-free path only, like the sweep-replay memo).
    pub wave: Option<WaveConfig>,
    /// Simulated-cost-model switch (DESIGN.md §17). [`Metering::Off`]
    /// compiles the `Block` accounting out of the hot loop; results are
    /// bit-identical, `KernelStats` stay at launch values.
    pub metering: Metering,
    /// Follow rope (escape) links instead of per-level traversal state in the
    /// kernels that keep any — the *restart* kNN kernel's re-descents and the
    /// *range* kernel's parent backtracking (DESIGN.md §18). Every arriving
    /// node is evaluated once against the query; qualifying internal nodes
    /// fall through to their first child, everything else follows
    /// `GpuIndex::rope`. Results are bit-identical to the stacked traversal
    /// (`tests/ropes.rs`); counters reflect the rope fetches. Off by default:
    /// the paper's PSB figures use the leaf-sequential traversal.
    pub rope: bool,
    /// Distance-kernel lane selection: the explicit-SIMD same-op-order
    /// evaluators (the default) or the reference scalar loops. Both produce
    /// bit-identical f32 results (`psb-geom`'s identity suites); the switch
    /// exists for A/B wall-clock benching, not for correctness.
    pub lanes: DistLanes,
}

impl Default for KernelOptions {
    fn default() -> Self {
        Self {
            threads_per_block: 32,
            smem_policy: SharedMemPolicy::AllShared,
            use_minmax_prune: true,
            leaf_scan: true,
            layout: NodeLayout::Soa,
            schedule: QuerySchedule::Submission,
            fuse: 1,
            metrics: MetricsHandle::noop(),
            wave: None,
            metering: Metering::Simulated,
            rope: false,
            lanes: DistLanes::Simd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let o = KernelOptions::default();
        assert_eq!(o.threads_per_block, 32);
        assert!(o.use_minmax_prune);
        assert!(o.leaf_scan);
        assert_eq!(o.layout, NodeLayout::Soa);
        assert_eq!(o.schedule, QuerySchedule::Submission);
        assert_eq!(o.fuse, 1);
        assert!(!o.metrics.is_attached(), "telemetry is opt-in");
        assert!(o.wave.is_none(), "the wave engine is opt-in");
        assert_eq!(o.metering, Metering::Simulated, "figures need the cost model");
        assert!(!o.rope, "rope traversal is opt-in; the paper's traversal is stacked");
        assert_eq!(o.lanes, DistLanes::Simd, "SIMD lanes are bit-identical, so default-on");
    }
}
