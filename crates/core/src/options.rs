//! Kernel launch options, including the ablation switches called out in
//! DESIGN.md §7.

use crate::knnlist::SharedMemPolicy;

/// Simulated memory layout of tree nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NodeLayout {
    /// Structure-of-arrays: the paper's layout; child spheres stream as one
    /// coalesced block (§V-A).
    #[default]
    Soa,
    /// Array-of-structures: every child entry is its own strided transaction.
    /// Exists to quantify why the paper chose SoA.
    Aos,
}

/// Options shared by the GPU kernels.
#[derive(Clone, Debug)]
pub struct KernelOptions {
    /// Threads per block. The paper runs 32 threads over degree-128 nodes
    /// ("each processing unit ... processes four branches", §IV-D), so one warp
    /// per query is the default.
    pub threads_per_block: u32,
    /// Where the k-best list lives (§V-E).
    pub smem_policy: SharedMemPolicy,
    /// Use the k-th-MINMAXDIST bound to tighten the pruning distance at
    /// internal nodes (Algorithm 1, lines 13–15). Ablation switch.
    pub use_minmax_prune: bool,
    /// PSB's linear scan of sibling leaves (Algorithm 1, lines 39–45).
    /// Disabling it backtracks after every leaf — the ablation that shows where
    /// PSB's advantage comes from.
    pub leaf_scan: bool,
    /// Node memory layout (SoA vs AoS ablation).
    pub layout: NodeLayout,
}

impl Default for KernelOptions {
    fn default() -> Self {
        Self {
            threads_per_block: 32,
            smem_policy: SharedMemPolicy::AllShared,
            use_minmax_prune: true,
            leaf_scan: true,
            layout: NodeLayout::Soa,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let o = KernelOptions::default();
        assert_eq!(o.threads_per_block, 32);
        assert!(o.use_minmax_prune);
        assert!(o.leaf_scan);
        assert_eq!(o.layout, NodeLayout::Soa);
    }
}
