//! Batched query execution: one simulated thread block per query, host-parallel.
//!
//! The paper's experiments submit 240 queries per batch (§V-B). Each query runs
//! as an independent simulated block on the rayon pool; the per-block counters
//! are collected in query order (deterministic under any host thread count) and
//! aggregated by the device cost model into the figures' metrics.
//!
//! The `*_batch_recovering` runners add the fault-tolerance ladder: each query
//! is attempted under its own deterministic fault substream, retried once on a
//! typed [`KernelError`], and finally degraded to an exact brute-force scan
//! that follows no structural links. Results are exact under every rung; the
//! rung taken per query is recorded in [`QueryBatchResult::outcomes`].

use psb_geom::PointSet;
use psb_gpu::{
    launch_blocks, DeviceConfig, FaultPlan, FaultState, KernelStats, LaunchReport, NoopSink, Phase,
    PhaseBreakdown, TraceSink,
};
use psb_sstree::Neighbor;

use crate::error::{EngineError, KernelError, QueryOutcome};
use crate::index::GpuIndex;
use rayon::prelude::*;

use crate::kernels::{
    bnb::bnb_query, bnb::bnb_query_traced, range::range_query_gpu, restart::restart_query,
};
use crate::kernels::{
    bnb::bnb_try_query, brute::brute_index_query, brute::brute_index_range, brute::brute_query,
    psb::psb_query, psb::psb_query_traced, psb::psb_try_query, range::range_try_query,
    restart::restart_try_query,
};
use crate::options::KernelOptions;

/// Merge per-block counters into one (sums; peak shared memory is a max).
pub fn merge_stats(blocks: &[KernelStats]) -> KernelStats {
    let mut m = KernelStats::default();
    for b in blocks {
        m.merge(b);
    }
    m
}

/// Exact results plus the aggregated device-model report for a query batch.
#[derive(Clone, Debug)]
pub struct QueryBatchResult {
    /// Per-query neighbor lists, in query order.
    pub neighbors: Vec<Vec<Neighbor>>,
    /// Per-query (per-block) raw counters, in query order. For a recovering
    /// run this is the counters of the attempt that produced the result
    /// (failed attempts' partial counters are discarded — they model work a
    /// real device would have thrown away with the faulted launch).
    pub per_block: Vec<KernelStats>,
    /// Which recovery rung produced each query's result, in query order.
    /// All-[`QueryOutcome::Clean`] for the plain (non-recovering) runners.
    pub outcomes: Vec<QueryOutcome>,
    /// Aggregated metrics under the cost model.
    pub report: LaunchReport,
}

impl QueryBatchResult {
    /// Per-phase warp-efficiency / accessed-MB breakdown of the batch, one row
    /// per [`Phase`] in [`Phase::ALL`] order.
    pub fn phase_breakdown(&self) -> [PhaseBreakdown; Phase::COUNT] {
        self.report.phase_breakdown()
    }

    /// The batch's merged counters for one traversal phase.
    pub fn phase(&self, phase: Phase) -> &psb_gpu::PhaseStats {
        self.report.merged.phase(phase)
    }
}

fn run_batch(
    queries: &PointSet,
    warps_per_block: u32,
    cfg: &DeviceConfig,
    f: impl Fn(&[f32]) -> (Vec<Neighbor>, KernelStats) + Sync,
) -> Result<QueryBatchResult, EngineError> {
    if queries.is_empty() {
        return Err(EngineError::EmptyBatch);
    }
    let results: Vec<(Vec<Neighbor>, KernelStats)> =
        (0..queries.len()).into_par_iter().map(|i| f(queries.point(i))).collect();
    let (neighbors, per_block): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    let report = launch_blocks(cfg, warps_per_block, &per_block);
    let outcomes = vec![QueryOutcome::Clean; neighbors.len()];
    Ok(QueryBatchResult { neighbors, per_block, outcomes, report })
}

/// Sequential batch runner for recording runs: queries execute in order so the
/// event stream is deterministic and grouped per query.
fn run_batch_traced(
    queries: &PointSet,
    warps_per_block: u32,
    cfg: &DeviceConfig,
    sink: &mut dyn TraceSink,
    mut f: impl FnMut(&[f32], &mut dyn TraceSink) -> (Vec<Neighbor>, KernelStats),
) -> Result<QueryBatchResult, EngineError> {
    if queries.is_empty() {
        return Err(EngineError::EmptyBatch);
    }
    let mut neighbors = Vec::with_capacity(queries.len());
    let mut per_block = Vec::with_capacity(queries.len());
    for i in 0..queries.len() {
        let (n, s) = f(queries.point(i), sink);
        neighbors.push(n);
        per_block.push(s);
    }
    let report = launch_blocks(cfg, warps_per_block, &per_block);
    let outcomes = vec![QueryOutcome::Clean; neighbors.len()];
    Ok(QueryBatchResult { neighbors, per_block, outcomes, report })
}

/// The recovery ladder, applied per query on the rayon pool:
///
/// 1. **Attempt 0** under the query's fault substream (`plan.state_for(i, 0)`).
/// 2. **Retry** once under a fresh substream (`plan.state_for(i, 1)`) — a real
///    driver re-launching the failed block; transient upsets usually miss the
///    second run.
/// 3. **Degrade** to `fallback`, an exact brute-force scan that attaches no
///    fault state and follows no structural links, so it cannot fail.
///
/// A no-op plan attaches no fault state at all, so attempt 0 is bit-identical
/// to the plain runner and the ladder never advances.
fn run_batch_recovering(
    queries: &PointSet,
    warps_per_block: u32,
    cfg: &DeviceConfig,
    plan: &FaultPlan,
    attempt: impl Fn(&[f32], Option<FaultState>) -> Result<(Vec<Neighbor>, KernelStats), KernelError>
        + Sync,
    fallback: impl Fn(&[f32]) -> (Vec<Neighbor>, KernelStats) + Sync,
) -> Result<QueryBatchResult, EngineError> {
    if queries.is_empty() {
        return Err(EngineError::EmptyBatch);
    }
    let results: Vec<(Vec<Neighbor>, KernelStats, QueryOutcome)> = (0..queries.len())
        .into_par_iter()
        .map(|i| {
            let q = queries.point(i);
            let faults = |attempt_no: u32| {
                if plan.is_noop() {
                    None
                } else {
                    Some(plan.state_for(i as u64, attempt_no))
                }
            };
            match attempt(q, faults(0)) {
                Ok((n, s)) => (n, s, QueryOutcome::Clean),
                Err(first) => match attempt(q, faults(1)) {
                    Ok((n, s)) => (n, s, QueryOutcome::Retried { first }),
                    Err(retry) => {
                        let (n, s) = fallback(q);
                        (n, s, QueryOutcome::Degraded { first, retry })
                    }
                },
            }
        })
        .collect();
    let mut neighbors = Vec::with_capacity(results.len());
    let mut per_block = Vec::with_capacity(results.len());
    let mut outcomes = Vec::with_capacity(results.len());
    for (n, s, o) in results {
        neighbors.push(n);
        per_block.push(s);
        outcomes.push(o);
    }
    let mut report = launch_blocks(cfg, warps_per_block, &per_block);
    report.retried_queries =
        outcomes.iter().filter(|o| matches!(o, QueryOutcome::Retried { .. })).count() as u64;
    report.degraded_queries =
        outcomes.iter().filter(|o| matches!(o, QueryOutcome::Degraded { .. })).count() as u64;
    Ok(QueryBatchResult { neighbors, per_block, outcomes, report })
}

/// PSB over a batch of queries.
pub fn psb_batch<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> Result<QueryBatchResult, EngineError> {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch(queries, warps, cfg, |q| psb_query(tree, q, k, cfg, opts))
}

/// [`psb_batch`] with every metering call mirrored into `sink`; runs
/// sequentially so the event stream is in query order. Results and counters
/// are bit-identical to [`psb_batch`].
pub fn psb_batch_traced<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    sink: &mut dyn TraceSink,
) -> Result<QueryBatchResult, EngineError> {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch_traced(queries, warps, cfg, sink, |q, s| psb_query_traced(tree, q, k, cfg, opts, s))
}

/// [`psb_batch`] under a fault plan, with the retry/degrade recovery ladder.
/// Results are exact under any plan; with [`FaultPlan::none`] this is
/// bit-identical to [`psb_batch`] (results, counters, and report).
pub fn psb_batch_recovering<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    plan: &FaultPlan,
) -> Result<QueryBatchResult, EngineError> {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch_recovering(
        queries,
        warps,
        cfg,
        plan,
        |q, faults| psb_try_query(tree, q, k, cfg, opts, faults, &mut NoopSink),
        |q| brute_index_query(tree, q, k, cfg, opts),
    )
}

/// Branch-and-bound over a batch of queries.
pub fn bnb_batch<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> Result<QueryBatchResult, EngineError> {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch(queries, warps, cfg, |q| bnb_query(tree, q, k, cfg, opts))
}

/// [`bnb_batch`] with every metering call mirrored into `sink`; runs
/// sequentially so the event stream is in query order. Results and counters
/// are bit-identical to [`bnb_batch`].
pub fn bnb_batch_traced<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    sink: &mut dyn TraceSink,
) -> Result<QueryBatchResult, EngineError> {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch_traced(queries, warps, cfg, sink, |q, s| bnb_query_traced(tree, q, k, cfg, opts, s))
}

/// [`bnb_batch`] under a fault plan, with the retry/degrade recovery ladder.
pub fn bnb_batch_recovering<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    plan: &FaultPlan,
) -> Result<QueryBatchResult, EngineError> {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch_recovering(
        queries,
        warps,
        cfg,
        plan,
        |q, faults| bnb_try_query(tree, q, k, cfg, opts, faults, &mut NoopSink),
        |q| brute_index_query(tree, q, k, cfg, opts),
    )
}

/// Fixed-radius range queries over a batch (PSB-style sweep, fixed bound).
pub fn range_batch<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    radius: f32,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> Result<QueryBatchResult, EngineError> {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch(queries, warps, cfg, |q| range_query_gpu(tree, q, radius, cfg, opts))
}

/// [`range_batch`] under a fault plan, with the retry/degrade recovery ladder.
/// The degraded rung is an exact brute-force range scan over the flat point
/// array.
pub fn range_batch_recovering<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    radius: f32,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    plan: &FaultPlan,
) -> Result<QueryBatchResult, EngineError> {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch_recovering(
        queries,
        warps,
        cfg,
        plan,
        |q, faults| range_try_query(tree, q, radius, cfg, opts, faults, &mut NoopSink),
        |q| brute_index_range(tree, q, radius, cfg, opts),
    )
}

/// Scan-and-restart (no parent links) over a batch of queries.
pub fn restart_batch<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> Result<QueryBatchResult, EngineError> {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch(queries, warps, cfg, |q| restart_query(tree, q, k, cfg, opts))
}

/// [`restart_batch`] under a fault plan, with the retry/degrade recovery
/// ladder.
pub fn restart_batch_recovering<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    plan: &FaultPlan,
) -> Result<QueryBatchResult, EngineError> {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch_recovering(
        queries,
        warps,
        cfg,
        plan,
        |q, faults| restart_try_query(tree, q, k, cfg, opts, faults, &mut NoopSink),
        |q| brute_index_query(tree, q, k, cfg, opts),
    )
}

/// Brute-force scan over a batch of queries.
pub fn brute_batch(
    points: &PointSet,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> Result<QueryBatchResult, EngineError> {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch(queries, warps, cfg, |q| brute_query(points, q, k, cfg, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_data::{sample_queries, ClusteredSpec};
    use psb_sstree::{build, linear_knn, BuildMethod, SsTree};

    fn setup() -> (PointSet, SsTree, PointSet) {
        let ps =
            ClusteredSpec { clusters: 5, points_per_cluster: 400, dims: 8, sigma: 150.0, seed: 41 }
                .generate();
        let tree = build(&ps, 32, &BuildMethod::Hilbert);
        let queries = sample_queries(&ps, 24, 0.01, 42);
        (ps, tree, queries)
    }

    #[test]
    fn all_engines_agree_with_oracle() {
        let (ps, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let k = 10;
        let a = psb_batch(&tree, &queries, k, &cfg, &opts).expect("batch");
        let b = bnb_batch(&tree, &queries, k, &cfg, &opts).expect("batch");
        let c = brute_batch(&ps, &queries, k, &cfg, &opts).expect("batch");
        for (qi, q) in queries.iter().enumerate() {
            let want = linear_knn(&ps, q, k);
            for got in [&a.neighbors[qi], &b.neighbors[qi], &c.neighbors[qi]] {
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    let scale = w.dist.max(1.0);
                    assert!((g.dist - w.dist).abs() <= scale * 1e-4);
                }
            }
        }
    }

    #[test]
    fn batch_is_deterministic_under_parallelism() {
        let (_, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let a = psb_batch(&tree, &queries, 8, &cfg, &opts).expect("batch");
        let b = psb_batch(&tree, &queries, 8, &cfg, &opts).expect("batch");
        assert_eq!(a.per_block, b.per_block);
        assert_eq!(a.report.merged, b.report.merged);
    }

    #[test]
    fn report_covers_all_blocks() {
        let (_, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let r = psb_batch(&tree, &queries, 8, &cfg, &KernelOptions::default()).expect("batch");
        assert_eq!(r.report.merged.blocks as usize, queries.len());
        assert!(r.report.avg_response_ms > 0.0);
        assert!(r.report.warp_efficiency > 0.0 && r.report.warp_efficiency <= 1.0);
    }

    #[test]
    fn empty_batch_is_a_typed_error() {
        let (_, tree, _) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let empty = PointSet::new(tree.dims());
        assert!(matches!(psb_batch(&tree, &empty, 4, &cfg, &opts), Err(EngineError::EmptyBatch)));
        assert!(matches!(
            psb_batch_recovering(&tree, &empty, 4, &cfg, &opts, &FaultPlan::none()),
            Err(EngineError::EmptyBatch)
        ));
    }

    #[test]
    fn index_beats_brute_force_on_bytes_for_tight_clusters() {
        let ps =
            ClusteredSpec { clusters: 8, points_per_cluster: 500, dims: 8, sigma: 30.0, seed: 43 }
                .generate();
        let tree = build(&ps, 32, &BuildMethod::Hilbert);
        let queries = sample_queries(&ps, 8, 0.005, 44);
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let psb = psb_batch(&tree, &queries, 8, &cfg, &opts).expect("batch");
        let brute = brute_batch(&ps, &queries, 8, &cfg, &opts).expect("batch");
        assert!(
            psb.report.avg_accessed_mb < brute.report.avg_accessed_mb,
            "PSB {} MB >= brute {} MB",
            psb.report.avg_accessed_mb,
            brute.report.avg_accessed_mb
        );
    }
}
