//! Batched query execution: one simulated thread block per query, host-parallel.
//!
//! The paper's experiments submit 240 queries per batch (§V-B). Each query runs
//! as an independent simulated block on the rayon pool; the per-block counters
//! are collected in query order (deterministic under any host thread count) and
//! aggregated by the device cost model into the figures' metrics.

use psb_geom::PointSet;
use psb_gpu::{
    launch_blocks, DeviceConfig, KernelStats, LaunchReport, Phase, PhaseBreakdown, TraceSink,
};
use psb_sstree::Neighbor;

use crate::index::GpuIndex;
use rayon::prelude::*;

use crate::kernels::{
    bnb::bnb_query, bnb::bnb_query_traced, brute::brute_query, psb::psb_query,
    psb::psb_query_traced, range::range_query_gpu, restart::restart_query,
};
use crate::options::KernelOptions;

/// Merge per-block counters into one (sums; peak shared memory is a max).
pub fn merge_stats(blocks: &[KernelStats]) -> KernelStats {
    let mut m = KernelStats::default();
    for b in blocks {
        m.merge(b);
    }
    m
}

/// Exact results plus the aggregated device-model report for a query batch.
#[derive(Clone, Debug)]
pub struct QueryBatchResult {
    /// Per-query neighbor lists, in query order.
    pub neighbors: Vec<Vec<Neighbor>>,
    /// Per-query (per-block) raw counters, in query order.
    pub per_block: Vec<KernelStats>,
    /// Aggregated metrics under the cost model.
    pub report: LaunchReport,
}

impl QueryBatchResult {
    /// Per-phase warp-efficiency / accessed-MB breakdown of the batch, one row
    /// per [`Phase`] in [`Phase::ALL`] order.
    pub fn phase_breakdown(&self) -> [PhaseBreakdown; Phase::COUNT] {
        self.report.phase_breakdown()
    }

    /// The batch's merged counters for one traversal phase.
    pub fn phase(&self, phase: Phase) -> &psb_gpu::PhaseStats {
        self.report.merged.phase(phase)
    }
}

fn run_batch(
    queries: &PointSet,
    warps_per_block: u32,
    cfg: &DeviceConfig,
    f: impl Fn(&[f32]) -> (Vec<Neighbor>, KernelStats) + Sync,
) -> QueryBatchResult {
    assert!(!queries.is_empty(), "empty query batch");
    let results: Vec<(Vec<Neighbor>, KernelStats)> =
        (0..queries.len()).into_par_iter().map(|i| f(queries.point(i))).collect();
    let (neighbors, per_block): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    let report = launch_blocks(cfg, warps_per_block, &per_block);
    QueryBatchResult { neighbors, per_block, report }
}

/// Sequential batch runner for recording runs: queries execute in order so the
/// event stream is deterministic and grouped per query.
fn run_batch_traced(
    queries: &PointSet,
    warps_per_block: u32,
    cfg: &DeviceConfig,
    sink: &mut dyn TraceSink,
    mut f: impl FnMut(&[f32], &mut dyn TraceSink) -> (Vec<Neighbor>, KernelStats),
) -> QueryBatchResult {
    assert!(!queries.is_empty(), "empty query batch");
    let mut neighbors = Vec::with_capacity(queries.len());
    let mut per_block = Vec::with_capacity(queries.len());
    for i in 0..queries.len() {
        let (n, s) = f(queries.point(i), sink);
        neighbors.push(n);
        per_block.push(s);
    }
    let report = launch_blocks(cfg, warps_per_block, &per_block);
    QueryBatchResult { neighbors, per_block, report }
}

/// PSB over a batch of queries.
pub fn psb_batch<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> QueryBatchResult {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch(queries, warps, cfg, |q| psb_query(tree, q, k, cfg, opts))
}

/// [`psb_batch`] with every metering call mirrored into `sink`; runs
/// sequentially so the event stream is in query order. Results and counters
/// are bit-identical to [`psb_batch`].
pub fn psb_batch_traced<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    sink: &mut dyn TraceSink,
) -> QueryBatchResult {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch_traced(queries, warps, cfg, sink, |q, s| psb_query_traced(tree, q, k, cfg, opts, s))
}

/// Branch-and-bound over a batch of queries.
pub fn bnb_batch<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> QueryBatchResult {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch(queries, warps, cfg, |q| bnb_query(tree, q, k, cfg, opts))
}

/// [`bnb_batch`] with every metering call mirrored into `sink`; runs
/// sequentially so the event stream is in query order. Results and counters
/// are bit-identical to [`bnb_batch`].
pub fn bnb_batch_traced<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    sink: &mut dyn TraceSink,
) -> QueryBatchResult {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch_traced(queries, warps, cfg, sink, |q, s| bnb_query_traced(tree, q, k, cfg, opts, s))
}

/// Fixed-radius range queries over a batch (PSB-style sweep, fixed bound).
pub fn range_batch<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    radius: f32,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> QueryBatchResult {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch(queries, warps, cfg, |q| range_query_gpu(tree, q, radius, cfg, opts))
}

/// Scan-and-restart (no parent links) over a batch of queries.
pub fn restart_batch<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> QueryBatchResult {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch(queries, warps, cfg, |q| restart_query(tree, q, k, cfg, opts))
}

/// Brute-force scan over a batch of queries.
pub fn brute_batch(
    points: &PointSet,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> QueryBatchResult {
    let warps = opts.threads_per_block.div_ceil(cfg.warp_size);
    run_batch(queries, warps, cfg, |q| brute_query(points, q, k, cfg, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_data::{sample_queries, ClusteredSpec};
    use psb_sstree::{build, linear_knn, BuildMethod, SsTree};

    fn setup() -> (PointSet, SsTree, PointSet) {
        let ps =
            ClusteredSpec { clusters: 5, points_per_cluster: 400, dims: 8, sigma: 150.0, seed: 41 }
                .generate();
        let tree = build(&ps, 32, &BuildMethod::Hilbert);
        let queries = sample_queries(&ps, 24, 0.01, 42);
        (ps, tree, queries)
    }

    #[test]
    fn all_engines_agree_with_oracle() {
        let (ps, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let k = 10;
        let a = psb_batch(&tree, &queries, k, &cfg, &opts);
        let b = bnb_batch(&tree, &queries, k, &cfg, &opts);
        let c = brute_batch(&ps, &queries, k, &cfg, &opts);
        for (qi, q) in queries.iter().enumerate() {
            let want = linear_knn(&ps, q, k);
            for got in [&a.neighbors[qi], &b.neighbors[qi], &c.neighbors[qi]] {
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    let scale = w.dist.max(1.0);
                    assert!((g.dist - w.dist).abs() <= scale * 1e-4);
                }
            }
        }
    }

    #[test]
    fn batch_is_deterministic_under_parallelism() {
        let (_, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let a = psb_batch(&tree, &queries, 8, &cfg, &opts);
        let b = psb_batch(&tree, &queries, 8, &cfg, &opts);
        assert_eq!(a.per_block, b.per_block);
        assert_eq!(a.report.merged, b.report.merged);
    }

    #[test]
    fn report_covers_all_blocks() {
        let (_, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let r = psb_batch(&tree, &queries, 8, &cfg, &KernelOptions::default());
        assert_eq!(r.report.merged.blocks as usize, queries.len());
        assert!(r.report.avg_response_ms > 0.0);
        assert!(r.report.warp_efficiency > 0.0 && r.report.warp_efficiency <= 1.0);
    }

    #[test]
    fn index_beats_brute_force_on_bytes_for_tight_clusters() {
        let ps =
            ClusteredSpec { clusters: 8, points_per_cluster: 500, dims: 8, sigma: 30.0, seed: 43 }
                .generate();
        let tree = build(&ps, 32, &BuildMethod::Hilbert);
        let queries = sample_queries(&ps, 8, 0.005, 44);
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let psb = psb_batch(&tree, &queries, 8, &cfg, &opts);
        let brute = brute_batch(&ps, &queries, 8, &cfg, &opts);
        assert!(
            psb.report.avg_accessed_mb < brute.report.avg_accessed_mb,
            "PSB {} MB >= brute {} MB",
            psb.report.avg_accessed_mb,
            brute.report.avg_accessed_mb
        );
    }
}
