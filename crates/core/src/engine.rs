//! Batched query execution: one simulated thread block per query, host-parallel.
//!
//! The paper's experiments submit 240 queries per batch (§V-B). Each query runs
//! as an independent simulated block on the rayon pool; the per-block counters
//! are collected in query order (deterministic under any host thread count) and
//! aggregated by the device cost model into the figures' metrics.
//!
//! The `*_batch_recovering` runners add the fault-tolerance ladder: each query
//! is attempted under its own deterministic fault substream, retried once on a
//! typed [`KernelError`], and finally degraded to an exact brute-force scan
//! that follows no structural links. Results are exact under every rung; the
//! rung taken per query is recorded in [`QueryBatchResult::outcomes`].

use psb_geom::PointSet;
use psb_gpu::{
    launch_blocks_fused, DeviceConfig, FaultPlan, FaultState, KernelStats, LaunchReport, NoopSink,
    Phase, PhaseBreakdown, TraceSink,
};
use psb_sstree::Neighbor;

use crate::error::{EngineError, KernelError, QueryOutcome};
use crate::index::{GpuIndex, ImplicitKdIndex};
use rayon::prelude::*;

use crate::kernels::tpss::tpss_batch;
use crate::kernels::{
    bnb::bnb_query, bnb::bnb_query_traced, range::range_query_gpu, restart::restart_query,
};
use crate::kernels::{
    bnb::bnb_try_query, brute::brute_index_query, brute::brute_index_range, brute::brute_query,
    psb::psb_query, psb::psb_query_replay, psb::psb_query_traced, psb::psb_try_query,
    psb::psb_try_query_replay, range::range_try_query, restart::restart_try_query,
    stackfree::stackfree_query, stackfree::stackfree_try_query,
};
use crate::options::KernelOptions;
use crate::schedule::{hilbert_order, QuerySchedule};

/// Merge per-block counters into one (sums; peak shared memory is a max).
pub fn merge_stats(blocks: &[KernelStats]) -> KernelStats {
    let mut m = KernelStats::default();
    for b in blocks {
        m.merge(b);
    }
    m
}

/// Exact results plus the aggregated device-model report for a query batch.
#[derive(Clone, Debug)]
pub struct QueryBatchResult {
    /// Per-query neighbor lists, in query order.
    pub neighbors: Vec<Vec<Neighbor>>,
    /// Per-query (per-block) raw counters, in query order. For a recovering
    /// run this is the counters of the attempt that produced the result
    /// (failed attempts' partial counters are discarded — they model work a
    /// real device would have thrown away with the faulted launch).
    pub per_block: Vec<KernelStats>,
    /// Which recovery rung produced each query's result, in query order.
    /// All-[`QueryOutcome::Clean`] for the plain (non-recovering) runners.
    pub outcomes: Vec<QueryOutcome>,
    /// Aggregated metrics under the cost model.
    pub report: LaunchReport,
}

impl QueryBatchResult {
    /// Per-phase warp-efficiency / accessed-MB breakdown of the batch, one row
    /// per [`Phase`] in [`Phase::ALL`] order.
    pub fn phase_breakdown(&self) -> [PhaseBreakdown; Phase::COUNT] {
        self.report.phase_breakdown()
    }

    /// The batch's merged counters for one traversal phase.
    pub fn phase(&self, phase: Phase) -> &psb_gpu::PhaseStats {
        self.report.merged.phase(phase)
    }
}

/// Warps per simulated (pre-fusion) block under these options.
pub(crate) fn warps_of(cfg: &DeviceConfig, opts: &KernelOptions) -> u32 {
    opts.threads_per_block.div_ceil(cfg.warp_size)
}

/// The execution order the options ask for: `None` is submission order,
/// `Some(perm)` executes `perm[j]` as the `j`-th query (Hilbert schedule).
pub(crate) fn schedule_order(queries: &PointSet, opts: &KernelOptions) -> Option<Vec<u32>> {
    match opts.schedule {
        QuerySchedule::Submission => None,
        QuerySchedule::Hilbert => Some(hilbert_order(queries)),
    }
}

/// Per-batch telemetry shared by every runner: wall-clock latency histogram,
/// batch/query counters, and the launch report's simulated figures, all keyed
/// by the kernel `label`. `started` is `Some` only when a registry is attached
/// (the no-op path reads no clock).
pub(crate) fn record_batch(
    opts: &KernelOptions,
    label: &str,
    started: Option<std::time::Instant>,
    report: &LaunchReport,
) {
    let m = &opts.metrics;
    if let Some(t0) = started {
        let tag = format!("{{kernel=\"{label}\"}}");
        m.observe(&format!("engine.batch_us{tag}"), t0.elapsed().as_secs_f64() * 1e6);
        m.counter(&format!("engine.batches{tag}"), 1);
        m.counter(&format!("engine.queries{tag}"), report.merged.blocks);
    }
    report.record_into(m, label);
}

fn run_batch(
    queries: &PointSet,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    label: &str,
    f: impl Fn(&[f32]) -> (Vec<Neighbor>, KernelStats) + Sync,
) -> Result<QueryBatchResult, EngineError> {
    let order = schedule_order(queries, opts);
    run_batch_ordered(queries, cfg, opts, order.as_deref(), label, f)
}

/// [`run_batch`] with a precomputed execution order (the streaming pipeline
/// schedules chunk N+1 while chunk N executes, so it hands the permutation
/// in). Queries execute in scheduled order; neighbors and per-query counters
/// are un-permuted back to submission order, so every per-query output is
/// bit-identical to the submission-order engine. Only the launch aggregation
/// sees the schedule (it groups scheduled neighbors when fusing blocks).
pub(crate) fn run_batch_ordered(
    queries: &PointSet,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    order: Option<&[u32]>,
    label: &str,
    f: impl Fn(&[f32]) -> (Vec<Neighbor>, KernelStats) + Sync,
) -> Result<QueryBatchResult, EngineError> {
    if queries.is_empty() {
        return Err(EngineError::EmptyBatch);
    }
    let m = &opts.metrics;
    let started = m.is_attached().then(std::time::Instant::now);
    let _batch_span = m.span("engine");
    let _kernel_span = m.span(label);
    let n = queries.len();
    let (neighbors, per_block) = m.time("execute", || match order {
        None => {
            let results: Vec<(Vec<Neighbor>, KernelStats)> =
                (0..n).into_par_iter().map(|i| f(queries.point(i))).collect();
            results.into_iter().unzip()
        }
        Some(perm) => {
            debug_assert_eq!(perm.len(), n);
            let results: Vec<(u32, (Vec<Neighbor>, KernelStats))> =
                perm.par_iter().map(|&i| (i, f(queries.point(i as usize)))).collect();
            // Un-permute into submission order. `perm` is a permutation, so
            // every slot is overwritten exactly once.
            let mut neighbors = vec![Vec::new(); n];
            let mut per_block = vec![KernelStats::default(); n];
            for (i, (nb, st)) in results {
                neighbors[i as usize] = nb;
                per_block[i as usize] = st;
            }
            (neighbors, per_block)
        }
    });
    let report = m.time("aggregate", || {
        launch_blocks_fused(cfg, warps_of(cfg, opts), &per_block, opts.fuse, order)
    });
    record_batch(opts, label, started, &report);
    let outcomes = vec![QueryOutcome::Clean; n];
    Ok(QueryBatchResult { neighbors, per_block, outcomes, report })
}

/// Sequential batch runner for recording runs: queries execute in order so the
/// event stream is deterministic and grouped per query.
fn run_batch_traced(
    queries: &PointSet,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    label: &str,
    sink: &mut dyn TraceSink,
    mut f: impl FnMut(&[f32], &mut dyn TraceSink) -> (Vec<Neighbor>, KernelStats),
) -> Result<QueryBatchResult, EngineError> {
    if queries.is_empty() {
        return Err(EngineError::EmptyBatch);
    }
    let m = &opts.metrics;
    let started = m.is_attached().then(std::time::Instant::now);
    let _batch_span = m.span("engine");
    let _kernel_span = m.span(label);
    let mut neighbors = Vec::with_capacity(queries.len());
    let mut per_block = Vec::with_capacity(queries.len());
    {
        let _exec_span = m.span("execute");
        for i in 0..queries.len() {
            let (n, s) = f(queries.point(i), sink);
            neighbors.push(n);
            per_block.push(s);
        }
    }
    // Recording runs always execute (and fuse) in submission order so the
    // event stream stays grouped per query — the schedule knob is ignored
    // here, by design.
    let report = m.time("aggregate", || {
        launch_blocks_fused(cfg, warps_of(cfg, opts), &per_block, opts.fuse, None)
    });
    record_batch(opts, label, started, &report);
    let outcomes = vec![QueryOutcome::Clean; neighbors.len()];
    Ok(QueryBatchResult { neighbors, per_block, outcomes, report })
}

/// The recovery ladder, applied per query on the rayon pool:
///
/// 1. **Attempt 0** under the query's fault substream (`plan.state_for(i, 0)`).
/// 2. **Retry** once under a fresh substream (`plan.state_for(i, 1)`) — a real
///    driver re-launching the failed block; transient upsets usually miss the
///    second run.
/// 3. **Degrade** to `fallback`, an exact brute-force scan that attaches no
///    fault state and follows no structural links, so it cannot fail.
///
/// A no-op plan attaches no fault state at all, so attempt 0 is bit-identical
/// to the plain runner and the ladder never advances.
fn run_batch_recovering(
    queries: &PointSet,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    label: &str,
    plan: &FaultPlan,
    attempt: impl Fn(&[f32], Option<FaultState>) -> Result<(Vec<Neighbor>, KernelStats), KernelError>
        + Sync,
    fallback: impl Fn(&[f32]) -> (Vec<Neighbor>, KernelStats) + Sync,
) -> Result<QueryBatchResult, EngineError> {
    if queries.is_empty() {
        return Err(EngineError::EmptyBatch);
    }
    let m = &opts.metrics;
    let started = m.is_attached().then(std::time::Instant::now);
    let _batch_span = m.span("engine");
    let _kernel_span = m.span(label);
    let n_queries = queries.len();
    let order = schedule_order(queries, opts);
    // Fault substreams are keyed by *submission* index, so the ladder a query
    // climbs is independent of where the schedule places it.
    let ladder = |i: usize| {
        let q = queries.point(i);
        let faults = |attempt_no: u32| {
            if plan.is_noop() {
                None
            } else {
                Some(plan.state_for(i as u64, attempt_no))
            }
        };
        match attempt(q, faults(0)) {
            Ok((n, s)) => (n, s, QueryOutcome::Clean),
            Err(first) => match attempt(q, faults(1)) {
                Ok((n, s)) => (n, s, QueryOutcome::Retried { first }),
                Err(retry) => {
                    let (n, s) = fallback(q);
                    (n, s, QueryOutcome::Degraded { first, retry })
                }
            },
        }
    };
    type LadderResult = (Vec<Neighbor>, KernelStats, QueryOutcome);
    let mut neighbors = vec![Vec::new(); n_queries];
    let mut per_block = vec![KernelStats::default(); n_queries];
    let mut outcomes = vec![QueryOutcome::Clean; n_queries];
    {
        let _exec_span = m.span("execute");
        match &order {
            None => {
                let results: Vec<LadderResult> =
                    (0..n_queries).into_par_iter().map(ladder).collect();
                for (i, (n, s, o)) in results.into_iter().enumerate() {
                    neighbors[i] = n;
                    per_block[i] = s;
                    outcomes[i] = o;
                }
            }
            Some(perm) => {
                let results: Vec<(u32, LadderResult)> =
                    perm.par_iter().map(|&i| (i, ladder(i as usize))).collect();
                for (i, (n, s, o)) in results {
                    neighbors[i as usize] = n;
                    per_block[i as usize] = s;
                    outcomes[i as usize] = o;
                }
            }
        }
    }
    let mut report = m.time("aggregate", || {
        launch_blocks_fused(cfg, warps_of(cfg, opts), &per_block, opts.fuse, order.as_deref())
    });
    report.retried_queries =
        outcomes.iter().filter(|o| matches!(o, QueryOutcome::Retried { .. })).count() as u64;
    report.degraded_queries =
        outcomes.iter().filter(|o| matches!(o, QueryOutcome::Degraded { .. })).count() as u64;
    record_batch(opts, label, started, &report);
    Ok(QueryBatchResult { neighbors, per_block, outcomes, report })
}

/// PSB over a batch of queries. Under [`QuerySchedule::Hilbert`] the batch
/// runs through the throughput kernel (sweep-replay memo) in Hilbert order —
/// results, per-query counters, and the fuse-1 report are bit-identical to the
/// submission-order engine (`tests/schedule_parity.rs`), only the wall-clock
/// host cost drops.
/// With [`KernelOptions::wave`] set, the batch instead runs through the
/// buffer-wave node-centric engine (`wave.rs`): neighbors and outcomes are
/// bit-identical, counters reflect the amortized coalesced-sweep schedule.
pub fn psb_batch<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> Result<QueryBatchResult, EngineError> {
    if opts.wave.is_some() {
        return crate::wave::wave_knn_batch(tree, queries, k, cfg, opts).map(|(r, _)| r);
    }
    run_batch(queries, cfg, opts, "psb", |q| match opts.schedule {
        QuerySchedule::Submission => psb_query(tree, q, k, cfg, opts),
        QuerySchedule::Hilbert => psb_query_replay(tree, q, k, cfg, opts),
    })
}

/// [`psb_batch`] with every metering call mirrored into `sink`; runs
/// sequentially so the event stream is in query order. Results and counters
/// are bit-identical to [`psb_batch`].
pub fn psb_batch_traced<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    sink: &mut dyn TraceSink,
) -> Result<QueryBatchResult, EngineError> {
    run_batch_traced(queries, cfg, opts, "psb", sink, |q, s| {
        psb_query_traced(tree, q, k, cfg, opts, s)
    })
}

/// [`psb_batch`] under a fault plan, with the retry/degrade recovery ladder.
/// Results are exact under any plan; with [`FaultPlan::none`] this is
/// bit-identical to [`psb_batch`] (results, counters, and report).
pub fn psb_batch_recovering<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    plan: &FaultPlan,
) -> Result<QueryBatchResult, EngineError> {
    // The wave engine serves the fault-free path only (like the sweep-replay
    // memo): a no-op plan routes to the wave engine whole-batch, a real plan
    // disables waves and climbs the per-query ladder below.
    if opts.wave.is_some() && plan.is_noop() {
        return psb_batch(tree, queries, k, cfg, opts);
    }
    run_batch_recovering(
        queries,
        cfg,
        opts,
        "psb",
        plan,
        |q, faults| match opts.schedule {
            // The replay kernel self-disables whenever a fault state is
            // attached, so the ladder's faulted attempts are bit-identical to
            // the reference kernel's and only clean attempts take the memo.
            QuerySchedule::Submission => {
                psb_try_query(tree, q, k, cfg, opts, faults, &mut NoopSink)
            }
            QuerySchedule::Hilbert => {
                psb_try_query_replay(tree, q, k, cfg, opts, faults, &mut NoopSink)
            }
        },
        |q| brute_index_query(tree, q, k, cfg, opts),
    )
}

/// Branch-and-bound over a batch of queries.
pub fn bnb_batch<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> Result<QueryBatchResult, EngineError> {
    if opts.wave.is_some() {
        return crate::wave::wave_knn_batch(tree, queries, k, cfg, opts).map(|(r, _)| r);
    }
    run_batch(queries, cfg, opts, "bnb", |q| bnb_query(tree, q, k, cfg, opts))
}

/// [`bnb_batch`] with every metering call mirrored into `sink`; runs
/// sequentially so the event stream is in query order. Results and counters
/// are bit-identical to [`bnb_batch`].
pub fn bnb_batch_traced<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    sink: &mut dyn TraceSink,
) -> Result<QueryBatchResult, EngineError> {
    run_batch_traced(queries, cfg, opts, "bnb", sink, |q, s| {
        bnb_query_traced(tree, q, k, cfg, opts, s)
    })
}

/// [`bnb_batch`] under a fault plan, with the retry/degrade recovery ladder.
pub fn bnb_batch_recovering<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    plan: &FaultPlan,
) -> Result<QueryBatchResult, EngineError> {
    if opts.wave.is_some() && plan.is_noop() {
        return bnb_batch(tree, queries, k, cfg, opts);
    }
    run_batch_recovering(
        queries,
        cfg,
        opts,
        "bnb",
        plan,
        |q, faults| bnb_try_query(tree, q, k, cfg, opts, faults, &mut NoopSink),
        |q| brute_index_query(tree, q, k, cfg, opts),
    )
}

/// Fixed-radius range queries over a batch (PSB-style sweep, fixed bound).
pub fn range_batch<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    radius: f32,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> Result<QueryBatchResult, EngineError> {
    if opts.wave.is_some() {
        return crate::wave::wave_range_batch(tree, queries, radius, cfg, opts).map(|(r, _)| r);
    }
    run_batch(queries, cfg, opts, "range", |q| range_query_gpu(tree, q, radius, cfg, opts))
}

/// [`range_batch`] under a fault plan, with the retry/degrade recovery ladder.
/// The degraded rung is an exact brute-force range scan over the flat point
/// array.
pub fn range_batch_recovering<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    radius: f32,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    plan: &FaultPlan,
) -> Result<QueryBatchResult, EngineError> {
    if opts.wave.is_some() && plan.is_noop() {
        return range_batch(tree, queries, radius, cfg, opts);
    }
    run_batch_recovering(
        queries,
        cfg,
        opts,
        "range",
        plan,
        |q, faults| range_try_query(tree, q, radius, cfg, opts, faults, &mut NoopSink),
        |q| brute_index_range(tree, q, radius, cfg, opts),
    )
}

/// Scan-and-restart (no parent links) over a batch of queries.
pub fn restart_batch<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> Result<QueryBatchResult, EngineError> {
    if opts.wave.is_some() {
        return crate::wave::wave_knn_batch(tree, queries, k, cfg, opts).map(|(r, _)| r);
    }
    run_batch(queries, cfg, opts, "restart", |q| restart_query(tree, q, k, cfg, opts))
}

/// [`restart_batch`] under a fault plan, with the retry/degrade recovery
/// ladder.
pub fn restart_batch_recovering<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    plan: &FaultPlan,
) -> Result<QueryBatchResult, EngineError> {
    if opts.wave.is_some() && plan.is_noop() {
        return restart_batch(tree, queries, k, cfg, opts);
    }
    run_batch_recovering(
        queries,
        cfg,
        opts,
        "restart",
        plan,
        |q, faults| restart_try_query(tree, q, k, cfg, opts, faults, &mut NoopSink),
        |q| brute_index_query(tree, q, k, cfg, opts),
    )
}

/// Stack-free kNN over a batch of queries (the implicit left-balanced kd-tree
/// family — see `kernels::stackfree`).
///
/// [`KernelOptions::wave`] is ignored here by design: the buffer-wave engine
/// amortizes *node-block* fetches over query buffers, and the implicit tree
/// has no node blocks to amortize (every node is one point entry), so there
/// is no wave schedule to run. Everything else — Hilbert scheduling,
/// metering modes, metrics — behaves like the other per-query engines.
pub fn stackfree_batch<T: ImplicitKdIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> Result<QueryBatchResult, EngineError> {
    run_batch(queries, cfg, opts, "stackfree", |q| stackfree_query(tree, q, k, cfg, opts))
}

/// [`stackfree_batch`] under a fault plan, with the retry/degrade recovery
/// ladder. The degraded rung is the same exact brute scan as every other
/// engine's — it touches only the flat point array, which the implicit tree
/// has by construction.
pub fn stackfree_batch_recovering<T: ImplicitKdIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
    plan: &FaultPlan,
) -> Result<QueryBatchResult, EngineError> {
    run_batch_recovering(
        queries,
        cfg,
        opts,
        "stackfree",
        plan,
        |q, faults| stackfree_try_query(tree, q, k, cfg, opts, faults, &mut NoopSink),
        |q| brute_index_query(tree, q, k, cfg, opts),
    )
}

/// [`tpss_batch`] with the batch rescheduled into Hilbert order before the
/// task-parallel packer groups queries into blocks, and the neighbor lists
/// un-permuted back to submission order afterwards.
///
/// Unlike the block-per-query engines, TPSS packs queries into warps *by
/// position*, so rescheduling changes which queries share a block — per-block
/// counters are therefore reported in scheduled order and are **not**
/// comparable block-for-block with [`tpss_batch`]'s (the merged totals of a
/// lockstep simulation legitimately differ when lane groupings change).
/// Results are exact and identical either way; this wrapper guarantees
/// neighbors-parity only, by design (DESIGN.md §12).
pub fn tpss_batch_scheduled<T: GpuIndex>(
    tree: &T,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    threads_per_block: u32,
) -> (Vec<Vec<Neighbor>>, Vec<KernelStats>) {
    let perm = hilbert_order(queries);
    let mut scheduled = PointSet::new(queries.dims());
    for &i in &perm {
        scheduled.push(queries.point(i as usize));
    }
    let (sched_neighbors, stats) = tpss_batch(tree, &scheduled, k, cfg, threads_per_block);
    let mut neighbors = vec![Vec::new(); queries.len()];
    for (j, nb) in sched_neighbors.into_iter().enumerate() {
        neighbors[perm[j] as usize] = nb;
    }
    (neighbors, stats)
}

/// Brute-force scan over a batch of queries.
pub fn brute_batch(
    points: &PointSet,
    queries: &PointSet,
    k: usize,
    cfg: &DeviceConfig,
    opts: &KernelOptions,
) -> Result<QueryBatchResult, EngineError> {
    run_batch(queries, cfg, opts, "brute", |q| brute_query(points, q, k, cfg, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_data::{sample_queries, ClusteredSpec};
    use psb_sstree::{build, linear_knn, BuildMethod, SsTree};

    fn setup() -> (PointSet, SsTree, PointSet) {
        let ps =
            ClusteredSpec { clusters: 5, points_per_cluster: 400, dims: 8, sigma: 150.0, seed: 41 }
                .generate();
        let tree = build(&ps, 32, &BuildMethod::Hilbert);
        let queries = sample_queries(&ps, 24, 0.01, 42);
        (ps, tree, queries)
    }

    #[test]
    fn all_engines_agree_with_oracle() {
        let (ps, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let k = 10;
        let a = psb_batch(&tree, &queries, k, &cfg, &opts).expect("batch");
        let b = bnb_batch(&tree, &queries, k, &cfg, &opts).expect("batch");
        let c = brute_batch(&ps, &queries, k, &cfg, &opts).expect("batch");
        for (qi, q) in queries.iter().enumerate() {
            let want = linear_knn(&ps, q, k);
            for got in [&a.neighbors[qi], &b.neighbors[qi], &c.neighbors[qi]] {
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    let scale = w.dist.max(1.0);
                    assert!((g.dist - w.dist).abs() <= scale * 1e-4);
                }
            }
        }
    }

    #[test]
    fn batch_is_deterministic_under_parallelism() {
        let (_, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let a = psb_batch(&tree, &queries, 8, &cfg, &opts).expect("batch");
        let b = psb_batch(&tree, &queries, 8, &cfg, &opts).expect("batch");
        assert_eq!(a.per_block, b.per_block);
        assert_eq!(a.report.merged, b.report.merged);
    }

    #[test]
    fn report_covers_all_blocks() {
        let (_, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let r = psb_batch(&tree, &queries, 8, &cfg, &KernelOptions::default()).expect("batch");
        assert_eq!(r.report.merged.blocks as usize, queries.len());
        assert!(r.report.avg_response_ms > 0.0);
        assert!(r.report.warp_efficiency > 0.0 && r.report.warp_efficiency <= 1.0);
    }

    #[test]
    fn empty_batch_is_a_typed_error() {
        let (_, tree, _) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let empty = PointSet::new(tree.dims());
        assert!(matches!(psb_batch(&tree, &empty, 4, &cfg, &opts), Err(EngineError::EmptyBatch)));
        assert!(matches!(
            psb_batch_recovering(&tree, &empty, 4, &cfg, &opts, &FaultPlan::none()),
            Err(EngineError::EmptyBatch)
        ));
    }

    #[test]
    fn index_beats_brute_force_on_bytes_for_tight_clusters() {
        let ps =
            ClusteredSpec { clusters: 8, points_per_cluster: 500, dims: 8, sigma: 30.0, seed: 43 }
                .generate();
        let tree = build(&ps, 32, &BuildMethod::Hilbert);
        let queries = sample_queries(&ps, 8, 0.005, 44);
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions::default();
        let psb = psb_batch(&tree, &queries, 8, &cfg, &opts).expect("batch");
        let brute = brute_batch(&ps, &queries, 8, &cfg, &opts).expect("batch");
        assert!(
            psb.report.avg_accessed_mb < brute.report.avg_accessed_mb,
            "PSB {} MB >= brute {} MB",
            psb.report.avg_accessed_mb,
            brute.report.avg_accessed_mb
        );
    }
}
