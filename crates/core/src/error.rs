//! Typed failures for the hardened kernels and the batch engine.
//!
//! The stackless traversals trust the tree's parent/sibling links and the
//! `subtreeMaxLeafId` cursor; a corrupted link would otherwise turn the leaf
//! sweep into an out-of-bounds read or an infinite loop, and an injected
//! device fault would silently poison distances. The hardened kernel entry
//! points (`*_try_query`) bounds-check every link they follow, run under a
//! traversal step budget, and poll the device fault flags — converting every
//! failure mode into a [`KernelError`] the engine's recovery ladder can act
//! on.

use std::fmt;

use psb_gpu::DeviceFault;

/// Why a hardened kernel launch failed. Failed launches never return partial
/// results — the engine retries or falls back to an exact brute-force scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// The simulated device reported a fault (ECC, truncation, watchdog).
    Device(DeviceFault),
    /// A structural link pointed outside its array.
    LinkOutOfBounds {
        /// Which link was followed (e.g. `"parent"`, `"leaf_node_of"`).
        link: &'static str,
        /// The node the link was read from.
        node: u32,
        /// The out-of-range value.
        target: u64,
        /// The exclusive bound it violated.
        limit: u64,
    },
    /// A node's fields are inconsistent (wrong kind, bad level, empty tree).
    CorruptNode {
        /// The offending node id.
        node: u32,
        /// What was wrong.
        detail: &'static str,
    },
    /// The traversal exceeded its step budget — the corruption-induced-loop
    /// backstop. A valid tree can never reach this bound.
    StepBudgetExceeded {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// The kernel's static shared-memory footprint cannot fit on an SM.
    SmemOverflow {
        /// Bytes the kernel asked for.
        needed: u64,
        /// The device's per-SM capacity.
        limit: u64,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Device(d) => write!(f, "device fault: {d}"),
            KernelError::LinkOutOfBounds { link, node, target, limit } => {
                write!(f, "{link} link of node {node} points at {target}, outside limit {limit}")
            }
            KernelError::CorruptNode { node, detail } => {
                write!(f, "corrupt node {node}: {detail}")
            }
            KernelError::StepBudgetExceeded { budget } => {
                write!(f, "traversal exceeded its step budget of {budget}")
            }
            KernelError::SmemOverflow { needed, limit } => {
                write!(f, "kernel needs {needed} B of shared memory, SM holds {limit} B")
            }
        }
    }
}

impl std::error::Error for KernelError {}

impl From<DeviceFault> for KernelError {
    fn from(d: DeviceFault) -> Self {
        KernelError::Device(d)
    }
}

/// Batch-level failures from the engine entry points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The query batch was empty — there is nothing to launch.
    EmptyBatch,
    /// A serving-layer router holds no shards — there is nowhere to route.
    NoShards,
    /// A shard layout asked for more shards than there are points to spread
    /// over them (every shard must own at least one point).
    TooManyShards {
        /// Shards requested.
        shards: usize,
        /// Points available.
        points: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EmptyBatch => write!(f, "empty query batch"),
            EngineError::NoShards => write!(f, "router has no shards"),
            EngineError::TooManyShards { shards, points } => {
                write!(f, "cannot split {points} points into {shards} non-empty shards")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// How one query in a recovering batch (or the serving layer) was answered.
///
/// `Clean`, `Retried` and `Degraded` are exact in every case — those variants
/// only describe what it cost to get the exact answer. `DeadlineDegraded` is
/// the one marked best-effort rung: the serving front-end stopped consulting
/// shards (a blown deadline budget, or an open per-shard circuit breaker) and
/// returned the best answer the visited subset could give. A best-effort
/// result is always *marked* as such — a blown deadline never produces a
/// silent partial answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// First launch succeeded.
    Clean,
    /// First launch failed; the retry succeeded.
    Retried {
        /// The error the first launch died with.
        first: KernelError,
    },
    /// Both launches failed; the exact brute-force fallback answered.
    Degraded {
        /// The error the first launch died with.
        first: KernelError,
        /// The error the retry died with.
        retry: KernelError,
    },
    /// The serving layer answered best-effort: it skipped shards it would
    /// otherwise have consulted — because the query's deadline budget ran out
    /// mid-visit, or because a shard's circuit breaker was open — and the
    /// result is exact over the `visited` shards only.
    DeadlineDegraded {
        /// Shards whose results are reflected in the answer.
        visited: u32,
        /// Shards skipped: not yet examined when the budget blew, or routed
        /// around while their breaker was open.
        skipped: u32,
    },
}

impl QueryOutcome {
    /// Whether this query needed any recovery at all.
    pub fn is_clean(&self) -> bool {
        matches!(self, QueryOutcome::Clean)
    }

    /// Whether the answer is exact over the full dataset. Everything except
    /// [`QueryOutcome::DeadlineDegraded`] is.
    pub fn is_exact(&self) -> bool {
        !matches!(self, QueryOutcome::DeadlineDegraded { .. })
    }
}
