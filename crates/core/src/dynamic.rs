//! Incremental updates over the bottom-up-packed SS-tree.
//!
//! The paper's §IV builds the index in batches because "top-down insertion ...
//! requires serialization of insert operations and excessive locking", and GPU
//! indexes in practice are rebuilt rather than mutated. [`DynamicSsTree`]
//! packages that pattern: inserts land in a host-side **delta buffer** that
//! queries scan exactly (brute force over the delta is cheap while it is
//! small), deletions are **tombstones** filtered out of results, and when the
//! delta or tombstone volume crosses a threshold the whole index is rebuilt
//! bottom-up — which is fast precisely because of the paper's parallel
//! construction.
//!
//! Queries remain exact at every moment; the structure trades a bounded
//! amount of per-query delta scanning for never paying top-down insertion.

use std::collections::HashSet;

use psb_geom::{dist, PointSet};
use psb_gpu::{DeviceConfig, KernelStats};
use psb_sstree::{build, BuildMethod, Neighbor, SsTree};

use crate::kernels::psb::psb_query;
use crate::options::KernelOptions;

/// An SS-tree with batched inserts, tombstoned deletes, and rebuild-on-demand.
pub struct DynamicSsTree {
    base: SsTree,
    method: BuildMethod,
    degree: usize,
    /// Points inserted since the last rebuild (scanned exactly by queries).
    delta: PointSet,
    /// External ids of the delta points.
    delta_ids: Vec<u32>,
    /// External ids removed since the last rebuild.
    tombstones: HashSet<u32>,
    /// Position in the base's build input → external id (fixed at rebuild).
    base_snapshot_ids: Vec<u32>,
    next_id: u32,
    /// Rebuild when `delta + tombstones > fraction × live points`.
    rebuild_fraction: f64,
    /// All live coordinates keyed by external id order of insertion.
    live: Vec<(u32, Vec<f32>)>,
}

impl DynamicSsTree {
    /// Builds the initial index. Initial points receive external ids
    /// `0..points.len()`.
    pub fn new(points: &PointSet, degree: usize, method: BuildMethod) -> Self {
        let base = build(points, degree, &method);
        let live: Vec<(u32, Vec<f32>)> =
            (0..points.len()).map(|i| (i as u32, points.point(i).to_vec())).collect();
        let base_snapshot_ids: Vec<u32> = live.iter().map(|(id, _)| *id).collect();
        Self {
            base,
            method,
            degree,
            base_snapshot_ids,
            delta: PointSet::new(points.dims()),
            delta_ids: Vec::new(),
            tombstones: HashSet::new(),
            next_id: points.len() as u32,
            rebuild_fraction: 0.2,
            live,
        }
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether the structure holds no live points.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Points waiting in the delta buffer.
    pub fn pending(&self) -> usize {
        self.delta.len()
    }

    /// Inserts a point; returns its external id. May trigger a rebuild.
    pub fn insert(&mut self, p: &[f32]) -> u32 {
        assert_eq!(p.len(), self.base.dims, "dimensionality mismatch");
        let id = self.next_id;
        self.next_id += 1;
        self.delta.push(p);
        self.delta_ids.push(id);
        self.live.push((id, p.to_vec()));
        self.maybe_rebuild();
        id
    }

    /// Removes a point by external id; returns whether it was alive.
    pub fn remove(&mut self, id: u32) -> bool {
        let Some(pos) = self.live.iter().position(|(i, _)| *i == id) else {
            return false;
        };
        self.live.swap_remove(pos);
        // A delta point can be dropped from the buffer outright.
        if let Some(dpos) = self.delta_ids.iter().position(|&i| i == id) {
            self.delta_ids.remove(dpos);
            let dims = self.base.dims;
            let mut flat = Vec::with_capacity(self.delta.as_flat().len() - dims);
            for (i, point) in self.delta.iter().enumerate() {
                if i != dpos {
                    flat.extend_from_slice(point);
                }
            }
            self.delta = PointSet::from_flat(dims, flat);
            return true;
        }
        self.tombstones.insert(id);
        self.maybe_rebuild();
        true
    }

    fn maybe_rebuild(&mut self) {
        let churn = self.delta.len() + self.tombstones.len();
        if churn as f64 > self.rebuild_fraction * self.live.len().max(1) as f64 {
            self.rebuild();
        }
    }

    /// Rebuilds the packed index from the live set and clears delta/tombstones.
    ///
    /// External ids are preserved through the rebuild: the internal tree ids
    /// are remapped back to external ids on every query.
    ///
    /// The rebuilt arena passes through [`psb_sstree::build`], whose
    /// materialization runs [`SsTree::validate`] before returning — so every
    /// rebuild is structurally verified before queries touch it.
    pub fn rebuild(&mut self) {
        if self.live.is_empty() {
            return; // keep the last base; queries return nothing via filters
        }
        let mut ps = PointSet::with_capacity(self.base.dims, self.live.len());
        for (_, p) in &self.live {
            ps.push(p);
        }
        self.base = build(&ps, self.degree, &self.method);
        self.base_snapshot_ids = self.live.iter().map(|(id, _)| *id).collect();
        self.delta = PointSet::new(self.base.dims);
        self.delta_ids.clear();
        self.tombstones.clear();
    }

    /// Internal result id → external id. Base results carry positions into the
    /// dataset the base was last built from; the snapshot mapping taken at
    /// rebuild time translates them to stable external ids.
    fn external_id(&self, base_result_id: u32) -> u32 {
        self.base_snapshot_ids[base_result_id as usize]
    }

    /// Exact kNN on the CPU: query the base over-fetched by the tombstone
    /// count, filter, merge with an exact scan of the delta buffer.
    pub fn knn(&self, q: &[f32], k: usize) -> Vec<Neighbor> {
        assert!(k >= 1);
        if self.live.is_empty() {
            return Vec::new();
        }
        let over = k + self.tombstones.len();
        let mut merged: Vec<Neighbor> = psb_sstree::knn_best_first(&self.base, q, over)
            .into_iter()
            .map(|n| Neighbor { dist: n.dist, id: self.external_id(n.id) })
            .filter(|n| !self.tombstones.contains(&n.id))
            .collect();
        for (pos, p) in self.delta.iter().enumerate() {
            merged.push(Neighbor { dist: dist(q, p), id: self.delta_ids[pos] });
        }
        merged.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        merged.truncate(k.min(self.live.len()));
        merged
    }

    /// Exact kNN on the simulated GPU: PSB over the base plus a streamed scan
    /// of the delta buffer in the same block, counters merged.
    pub fn knn_gpu(
        &self,
        q: &[f32],
        k: usize,
        cfg: &DeviceConfig,
        opts: &KernelOptions,
    ) -> (Vec<Neighbor>, KernelStats) {
        assert!(k >= 1);
        if self.live.is_empty() {
            return (Vec::new(), KernelStats::default());
        }
        let over = k + self.tombstones.len();
        let (base_hits, mut stats) = psb_query(&self.base, q, over, cfg, opts);
        let mut merged: Vec<Neighbor> = base_hits
            .into_iter()
            .map(|n| Neighbor { dist: n.dist, id: self.external_id(n.id) })
            .filter(|n| !self.tombstones.contains(&n.id))
            .collect();
        if !self.delta.is_empty() {
            let (delta_hits, delta_stats) =
                crate::kernels::brute::brute_query(&self.delta, q, k, cfg, opts);
            stats.merge(&delta_stats);
            stats.blocks = 1; // one logical query
            merged.extend(
                delta_hits
                    .into_iter()
                    .map(|n| Neighbor { dist: n.dist, id: self.delta_ids[n.id as usize] }),
            );
        }
        merged.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        merged.truncate(k.min(self.live.len()));
        (merged, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_data::{sample_queries, ClusteredSpec};
    use psb_sstree::linear_knn;

    fn dataset() -> PointSet {
        ClusteredSpec { clusters: 4, points_per_cluster: 250, dims: 3, sigma: 80.0, seed: 151 }
            .generate()
    }

    /// Reference: linear scan over the live set with external ids.
    fn oracle(t: &DynamicSsTree, q: &[f32], k: usize) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> =
            t.live.iter().map(|(id, p)| Neighbor { dist: dist(q, p), id: *id }).collect();
        v.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        v.truncate(k.min(v.len()));
        v
    }

    fn assert_matches(t: &DynamicSsTree, q: &[f32], k: usize) {
        let want = oracle(t, q, k);
        let got = t.knn(q, k);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.dist).abs() <= w.dist.max(1.0) * 1e-4);
        }
        let cfg = DeviceConfig::k40();
        let (gpu, _) = t.knn_gpu(q, k, &cfg, &KernelOptions::default());
        assert_eq!(gpu.len(), want.len());
        for (g, w) in gpu.iter().zip(&want) {
            assert!((g.dist - w.dist).abs() <= w.dist.max(1.0) * 1e-4);
        }
    }

    #[test]
    fn fresh_index_matches_static_search() {
        let ps = dataset();
        let t = DynamicSsTree::new(&ps, 16, BuildMethod::Hilbert);
        let q = sample_queries(&ps, 5, 0.01, 152);
        for qp in q.iter() {
            let want = linear_knn(&ps, qp, 8);
            let got = t.knn(qp, 8);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.dist - w.dist).abs() <= w.dist.max(1.0) * 1e-4);
            }
        }
    }

    #[test]
    fn inserts_are_visible_immediately() {
        let ps = dataset();
        let mut t = DynamicSsTree::new(&ps, 16, BuildMethod::Hilbert);
        let probe = vec![99999.0f32, 99999.0, 99999.0];
        let id = t.insert(&probe);
        let got = t.knn(&probe, 1);
        assert_eq!(got[0].id, id);
        assert!(got[0].dist <= 1e-5);
        assert_matches(&t, &probe, 5);
    }

    #[test]
    fn removed_points_disappear() {
        let ps = dataset();
        let mut t = DynamicSsTree::new(&ps, 16, BuildMethod::Hilbert);
        let q = ps.point(100).to_vec();
        let before = t.knn(&q, 1);
        assert_eq!(before[0].id, 100);
        assert!(t.remove(100));
        let after = t.knn(&q, 1);
        assert_ne!(after[0].id, 100);
        assert!(!t.remove(100), "double remove must report absent");
        assert_matches(&t, &q, 8);
    }

    #[test]
    fn churn_triggers_rebuild_and_stays_exact() {
        let ps = dataset();
        let mut t = DynamicSsTree::new(&ps, 16, BuildMethod::Hilbert);
        let initial_len = t.len();
        // Heavy churn: insert 30% new points, remove some old, some new.
        let mut new_ids = Vec::new();
        for i in 0..300 {
            let p = vec![i as f32 * 7.0, 100.0, -50.0];
            new_ids.push(t.insert(&p));
        }
        for id in 0..50u32 {
            t.remove(id);
        }
        for &id in new_ids.iter().take(25) {
            t.remove(id);
        }
        assert_eq!(t.len(), initial_len + 300 - 75);
        // After this much churn a rebuild must have fired (threshold 20%).
        assert!(t.pending() < 300, "delta was never flushed");
        let q = vec![700.0f32, 100.0, -50.0];
        assert_matches(&t, &q, 12);
    }

    #[test]
    fn delta_point_removal_shrinks_buffer() {
        let ps = dataset();
        let mut t = DynamicSsTree::new(&ps, 16, BuildMethod::Hilbert);
        let a = t.insert(&[1.0, 2.0, 3.0]);
        let b = t.insert(&[4.0, 5.0, 6.0]);
        assert_eq!(t.pending(), 2);
        assert!(t.remove(a));
        assert_eq!(t.pending(), 1);
        let got = t.knn(&[4.0, 5.0, 6.0], 1);
        assert_eq!(got[0].id, b);
    }

    #[test]
    fn empty_after_removing_everything() {
        let mut small = PointSet::new(2);
        for i in 0..5 {
            small.push(&[i as f32, 0.0]);
        }
        let mut t = DynamicSsTree::new(&small, 4, BuildMethod::Hilbert);
        for id in 0..5u32 {
            t.remove(id);
        }
        assert!(t.is_empty());
        assert!(t.knn(&[0.0, 0.0], 3).is_empty());
    }
}
