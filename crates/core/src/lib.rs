//! Parallel Scan and Backtrack (PSB) — the paper's primary contribution.
//!
//! This crate implements exact kNN query processing on the simulated GPU
//! ([`psb_gpu`]) over SS-trees ([`psb_sstree`]):
//!
//! * [`kernels::psb`] — the PSB traversal (Algorithm 1): an initial greedy
//!   descent establishes a pruning distance, then a stackless left-to-right
//!   sweep visits the leftmost unvisited leaf within the pruning distance,
//!   linearly scans sibling leaves while they keep improving the result, and
//!   backtracks through parent links guarded by `subtreeMaxLeafId`.
//! * [`kernels::bnb`] — the classic branch-and-bound baseline on the same tree,
//!   with parent-link backtracking that re-fetches and re-evaluates parent
//!   nodes from global memory (the cost the paper attributes to it).
//! * [`kernels::brute`] — the GPU brute-force scan baseline.
//! * [`knnlist`] — the shared-memory k-best list, including the paper's §V-E
//!   "hybrid" extension that spills the rarely-touched small distances to
//!   global memory.
//! * [`engine`] — batched execution: one simulated thread block per query,
//!   host-parallel via rayon, aggregated with the device cost model.
//!
//! Every kernel returns both exact results (verified against CPU oracles) and
//! the counters the paper's figures are built from.

pub mod dynamic;
pub mod engine;
pub mod error;
pub mod index;
pub mod kernels;
pub mod knnlist;
pub mod options;
pub mod schedule;
pub mod shard;
pub mod stream;
pub mod wave;

pub use dynamic::DynamicSsTree;
pub use engine::{
    bnb_batch, bnb_batch_recovering, bnb_batch_traced, brute_batch, merge_stats, psb_batch,
    psb_batch_recovering, psb_batch_traced, range_batch, range_batch_recovering, restart_batch,
    restart_batch_recovering, stackfree_batch, stackfree_batch_recovering, tpss_batch_scheduled,
    QueryBatchResult,
};
pub use error::{EngineError, KernelError, QueryOutcome};
pub use index::{
    gather_child_sweep, gather_leaf_sweep, GpuIndex, ImplicitKdIndex, SweepScratch, NO_ROPE,
};
pub use kernels::bnb::bnb_try_query;
pub use kernels::brute::{brute_index_query, brute_index_range, brute_try_query};
pub use kernels::psb::psb_try_query;
pub use kernels::range::range_try_query;
pub use kernels::restart::restart_try_query;
pub use kernels::stackfree::{stackfree_query, stackfree_query_traced, stackfree_try_query};
pub use kernels::tpss::{tpss_batch, tpss_batch_traced, tpss_try_batch};
pub use knnlist::SharedMemPolicy;
pub use options::{KernelOptions, Metering, NodeLayout};
pub use psb_geom::DistLanes;
pub use psb_metrics::{MetricsHandle, Registry};
pub use schedule::{hilbert_order, hilbert_permutation, QuerySchedule, ScheduleScratch};
pub use shard::{partition, shard_sphere, ShardPlan, ShardPolicy};
pub use stream::{QueryStream, StreamKernel};
pub use wave::{wave_knn_batch, wave_range_batch, WaveConfig, WaveReport};

/// Instruction cost of one `dims`-dimensional distance evaluation in the cost
/// model: a 4-wide FMA loop plus the sqrt/compare tail.
#[inline]
pub fn dist_cost(dims: usize) -> u64 {
    (dims as u64).div_ceil(4) + 2
}
