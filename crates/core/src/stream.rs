//! Streaming batched execution: the throughput pipeline of DESIGN.md §12.
//!
//! A [`QueryStream`] accepts queries one at a time and executes them in
//! fixed-size chunks (default [`QueryStream::DEFAULT_CHUNK`] = 240, the
//! paper's batch size). Chunks are double-buffered: when chunk N+1 fills, its
//! schedule (the Hilbert permutation, under
//! [`QuerySchedule::Hilbert`]) is computed *before* chunk N executes, so on a
//! real device the host-side sort of the next batch would overlap the
//! in-flight launch — the sequential simulation interleaves the two stages in
//! the same order. One per-stream [`ScheduleScratch`] arena backs every
//! chunk's scheduling, so a long session reuses the same key and permutation
//! buffers instead of allocating per chunk (the kernels' own scratch is
//! likewise pooled, per host thread).
//!
//! Results surface per chunk as ordinary [`QueryBatchResult`]s, in submission
//! order both across chunks and within each chunk — scheduling never leaks
//! into what the caller observes (`tests/schedule_parity.rs`).

use std::collections::VecDeque;

use psb_geom::PointSet;
use psb_gpu::DeviceConfig;

use crate::engine::{run_batch_ordered, QueryBatchResult};
use crate::index::GpuIndex;
use crate::kernels::bnb::bnb_query;
use crate::kernels::psb::{psb_query, psb_query_replay};
use crate::kernels::range::range_query_gpu;
use crate::kernels::restart::restart_query;
use crate::options::KernelOptions;
use crate::schedule::{hilbert_permutation, QuerySchedule, ScheduleScratch};

/// Which kernel a [`QueryStream`] runs on each chunk.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StreamKernel {
    /// PSB kNN (Algorithm 1); the stream's scheduled chunks run the
    /// throughput (sweep-replay) variant, exactly like [`crate::psb_batch`].
    Psb { k: usize },
    /// Branch-and-bound kNN.
    Bnb { k: usize },
    /// Scan-and-restart kNN (no parent links).
    Restart { k: usize },
    /// Fixed-radius range query.
    Range { radius: f32 },
}

/// A double-buffered streaming pipeline over one index.
///
/// ```
/// use psb_core::{QueryStream, StreamKernel, KernelOptions, QuerySchedule};
/// # use psb_data::{sample_queries, ClusteredSpec};
/// # use psb_sstree::{build, BuildMethod};
/// # let ps = ClusteredSpec { clusters: 3, points_per_cluster: 200, dims: 4, sigma: 80.0, seed: 7 }
/// #     .generate();
/// # let tree = build(&ps, 16, &BuildMethod::Hilbert);
/// # let queries = sample_queries(&ps, 10, 0.01, 8);
/// let cfg = psb_gpu::DeviceConfig::k40();
/// let opts = KernelOptions { schedule: QuerySchedule::Hilbert, ..Default::default() };
/// let mut stream = QueryStream::with_chunk_size(&tree, StreamKernel::Psb { k: 4 }, cfg, opts, 4);
/// for q in queries.iter() {
///     stream.push(q);
///     while let Some(chunk) = stream.poll() {
///         assert_eq!(chunk.neighbors.len(), 4); // a full chunk, submission order
///     }
/// }
/// for tail in stream.finish() {
///     assert!(!tail.neighbors.is_empty());
/// }
/// ```
pub struct QueryStream<'t, T: GpuIndex> {
    tree: &'t T,
    kernel: StreamKernel,
    cfg: DeviceConfig,
    opts: KernelOptions,
    chunk: usize,
    /// Chunk currently filling (N+1 in flight of arrival).
    pending: PointSet,
    /// Full chunk staged behind the filling one, with its precomputed
    /// schedule: it executes when the next chunk fills (or at `finish`).
    staged: Option<(PointSet, Option<Vec<u32>>)>,
    /// The per-stream scheduling arena, reused by every chunk.
    sched: ScheduleScratch,
    /// Completed chunk results awaiting [`poll`](Self::poll), oldest first.
    done: VecDeque<QueryBatchResult>,
    submitted: u64,
    /// Cumulative wall time spent computing chunk schedules (the stage that a
    /// real device overlaps with the in-flight launch). Only accumulated when
    /// `opts.metrics` is attached; nanoseconds.
    staging_ns: u64,
    /// Cumulative wall time spent executing chunks; nanoseconds, gated the
    /// same way.
    execute_ns: u64,
}

impl<'t, T: GpuIndex> QueryStream<'t, T> {
    /// The default chunk size: the paper's 240-query batch (§V-B).
    pub const DEFAULT_CHUNK: usize = 240;

    /// A stream executing [`Self::DEFAULT_CHUNK`]-query chunks.
    pub fn new(tree: &'t T, kernel: StreamKernel, cfg: DeviceConfig, opts: KernelOptions) -> Self {
        Self::with_chunk_size(tree, kernel, cfg, opts, Self::DEFAULT_CHUNK)
    }

    /// A stream with an explicit chunk size (at least 1).
    pub fn with_chunk_size(
        tree: &'t T,
        kernel: StreamKernel,
        cfg: DeviceConfig,
        opts: KernelOptions,
        chunk: usize,
    ) -> Self {
        assert!(chunk >= 1, "chunk size must be at least 1");
        let pending = PointSet::with_capacity(tree.dims(), chunk);
        Self {
            tree,
            kernel,
            cfg,
            opts,
            chunk,
            pending,
            staged: None,
            sched: ScheduleScratch::default(),
            done: VecDeque::new(),
            submitted: 0,
            staging_ns: 0,
            execute_ns: 0,
        }
    }

    /// The stream's chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// Total queries pushed so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Queries accepted but not yet executed (filling + staged chunks).
    pub fn queued(&self) -> usize {
        self.pending.len() + self.staged.as_ref().map_or(0, |(ps, _)| ps.len())
    }

    /// Submit one query. When this fills the current chunk, the chunk is
    /// scheduled (staged) and the previously staged chunk executes — results
    /// become available through [`poll`](Self::poll).
    pub fn push(&mut self, q: &[f32]) {
        self.pending.push(q);
        self.submitted += 1;
        if self.pending.len() == self.chunk {
            self.stage();
        }
    }

    /// Take the oldest completed chunk result, if any. Chunks complete in
    /// submission order, and each result's per-query vectors are in
    /// submission order within the chunk.
    pub fn poll(&mut self) -> Option<QueryBatchResult> {
        self.done.pop_front()
    }

    /// Drain the pipeline: execute the staged chunk and any partial chunk
    /// still filling, and return every not-yet-polled result, oldest first.
    pub fn finish(&mut self) -> Vec<QueryBatchResult> {
        if !self.pending.is_empty() {
            self.stage();
        }
        if let Some((chunk, order)) = self.staged.take() {
            self.execute(chunk, order);
        }
        self.done.drain(..).collect()
    }

    /// Move the filling chunk into the staged slot, computing its schedule
    /// now; execute whatever was staged before it.
    fn stage(&mut self) {
        let chunk = std::mem::replace(
            &mut self.pending,
            PointSet::with_capacity(self.tree.dims(), self.chunk),
        );
        let m = &self.opts.metrics;
        let started = m.is_attached().then(std::time::Instant::now);
        let order = match self.opts.schedule {
            QuerySchedule::Submission => None,
            QuerySchedule::Hilbert => Some(hilbert_permutation(&chunk, &mut self.sched)),
        };
        if let Some(t0) = started {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.staging_ns = self.staging_ns.saturating_add(ns);
            self.opts.metrics.observe("stream.stage_us", ns as f64 / 1e3);
        }
        if let Some((prev, prev_order)) = self.staged.replace((chunk, order)) {
            self.execute(prev, prev_order);
        }
    }

    /// Publish the pipeline-overlap view after a chunk executes: how much of
    /// the cumulative staging (scheduling) time fits under the cumulative
    /// execution time. 1.0 means scheduling hides completely behind in-flight
    /// chunks on a real device; values below 1.0 mean the host-side sort is
    /// the bottleneck.
    fn record_overlap(&self) {
        let m = &self.opts.metrics;
        m.gauge("stream.staging_us", self.staging_ns as f64 / 1e3);
        m.gauge("stream.execute_us", self.execute_ns as f64 / 1e3);
        let overlap = if self.staging_ns == 0 {
            1.0
        } else {
            (self.execute_ns as f64 / self.staging_ns as f64).min(1.0)
        };
        m.gauge("stream.overlap_ratio", overlap);
    }

    fn execute(&mut self, chunk: PointSet, order: Option<Vec<u32>>) {
        let (tree, cfg, opts) = (self.tree, &self.cfg, &self.opts);
        let ord = order.as_deref();
        let started = opts.metrics.is_attached().then(std::time::Instant::now);
        let result = if opts.wave.is_some() {
            // Wave mode: the whole chunk runs through the buffer-wave engine
            // (one node-centric traversal per chunk instead of one per
            // query), reusing the precomputed schedule like the per-query
            // path below. Results are bit-identical (tests below).
            match self.kernel {
                StreamKernel::Psb { k } | StreamKernel::Bnb { k } | StreamKernel::Restart { k } => {
                    crate::wave::wave_knn_batch_ordered(tree, &chunk, k, cfg, opts, ord)
                }
                StreamKernel::Range { radius } => {
                    crate::wave::wave_range_batch_ordered(tree, &chunk, radius, cfg, opts, ord)
                }
            }
            .map(|(r, _)| r)
        } else {
            match self.kernel {
                StreamKernel::Psb { k } => {
                    run_batch_ordered(&chunk, cfg, opts, ord, "psb", |q| match opts.schedule {
                        QuerySchedule::Submission => psb_query(tree, q, k, cfg, opts),
                        QuerySchedule::Hilbert => psb_query_replay(tree, q, k, cfg, opts),
                    })
                }
                StreamKernel::Bnb { k } => run_batch_ordered(&chunk, cfg, opts, ord, "bnb", |q| {
                    bnb_query(tree, q, k, cfg, opts)
                }),
                StreamKernel::Restart { k } => {
                    run_batch_ordered(&chunk, cfg, opts, ord, "restart", |q| {
                        restart_query(tree, q, k, cfg, opts)
                    })
                }
                StreamKernel::Range { radius } => {
                    run_batch_ordered(&chunk, cfg, opts, ord, "range", |q| {
                        range_query_gpu(tree, q, radius, cfg, opts)
                    })
                }
            }
        };
        // Chunks are only ever staged non-empty, so the launch cannot fail.
        let result = result.unwrap_or_else(|e| panic!("non-empty chunk failed to launch: {e}"));
        if let Some(t0) = started {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.execute_ns = self.execute_ns.saturating_add(ns);
            let m = &self.opts.metrics;
            m.observe("stream.chunk_us", ns as f64 / 1e3);
            m.counter("stream.chunks", 1);
            m.counter("stream.queries", result.neighbors.len() as u64);
            self.record_overlap();
        }
        self.done.push_back(result);
        if let Some(perm) = order {
            self.sched.recycle(perm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::psb_batch;
    use psb_data::{sample_queries, ClusteredSpec};
    use psb_sstree::{build, BuildMethod, SsTree};

    fn setup() -> (PointSet, SsTree, PointSet) {
        let ps =
            ClusteredSpec { clusters: 4, points_per_cluster: 300, dims: 6, sigma: 120.0, seed: 91 }
                .generate();
        let tree = build(&ps, 16, &BuildMethod::Hilbert);
        let queries = sample_queries(&ps, 25, 0.01, 92);
        (ps, tree, queries)
    }

    fn push_all(stream: &mut QueryStream<SsTree>, queries: &PointSet) -> Vec<QueryBatchResult> {
        let mut out = Vec::new();
        for q in queries.iter() {
            stream.push(q);
            while let Some(r) = stream.poll() {
                out.push(r);
            }
        }
        out.extend(stream.finish());
        out
    }

    #[test]
    fn stream_chunks_match_the_batch_engine_bit_for_bit() {
        let (_, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        for schedule in [QuerySchedule::Submission, QuerySchedule::Hilbert] {
            let opts = KernelOptions { schedule, ..Default::default() };
            let mut stream = QueryStream::with_chunk_size(
                &tree,
                StreamKernel::Psb { k: 5 },
                cfg.clone(),
                opts.clone(),
                10,
            );
            let chunks = push_all(&mut stream, &queries);
            // 25 queries, chunk 10: two full chunks plus a 5-query tail.
            assert_eq!(chunks.iter().map(|c| c.neighbors.len()).collect::<Vec<_>>(), [10, 10, 5]);
            for (ci, chunk) in chunks.iter().enumerate() {
                let lo = ci * 10;
                let sub = queries
                    .gather(&(lo as u32..(lo + chunk.neighbors.len()) as u32).collect::<Vec<_>>());
                let whole = psb_batch(&tree, &sub, 5, &cfg, &opts).expect("batch");
                assert_eq!(chunk.per_block, whole.per_block);
                for (a, b) in chunk.neighbors.iter().zip(&whole.neighbors) {
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.id, y.id);
                        assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn double_buffer_holds_back_one_chunk_until_the_next_fills() {
        let (_, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions { schedule: QuerySchedule::Hilbert, ..Default::default() };
        let mut stream =
            QueryStream::with_chunk_size(&tree, StreamKernel::Psb { k: 3 }, cfg, opts, 8);
        for i in 0..8 {
            stream.push(queries.point(i));
        }
        // First chunk is staged (scheduled), not yet executed.
        assert_eq!(stream.queued(), 8);
        assert!(stream.poll().is_none());
        for i in 8..16 {
            stream.push(queries.point(i));
        }
        // Filling the second chunk executed the first.
        assert_eq!(stream.queued(), 8);
        assert!(stream.poll().is_some());
        assert!(stream.poll().is_none());
        assert_eq!(stream.submitted(), 16);
        assert_eq!(stream.finish().len(), 1);
    }

    #[test]
    fn all_stream_kernels_drain_cleanly() {
        let (_, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let opts = KernelOptions { schedule: QuerySchedule::Hilbert, ..Default::default() };
        for kernel in [
            StreamKernel::Bnb { k: 4 },
            StreamKernel::Restart { k: 4 },
            StreamKernel::Range { radius: 250.0 },
        ] {
            let mut stream =
                QueryStream::with_chunk_size(&tree, kernel, cfg.clone(), opts.clone(), 9);
            let chunks = push_all(&mut stream, &queries);
            assert_eq!(chunks.iter().map(|c| c.neighbors.len()).sum::<usize>(), queries.len());
        }
    }

    #[test]
    fn attached_stream_records_chunks_and_overlap() {
        let (_, tree, queries) = setup();
        let cfg = DeviceConfig::k40();
        let reg = psb_metrics::Registry::new();
        let opts = KernelOptions {
            schedule: QuerySchedule::Hilbert,
            metrics: psb_metrics::MetricsHandle::attached(&reg),
            ..Default::default()
        };
        let mut stream =
            QueryStream::with_chunk_size(&tree, StreamKernel::Psb { k: 3 }, cfg, opts, 8);
        let chunks = push_all(&mut stream, &queries);
        let snap = reg.snapshot();
        let counter = |name: &str| {
            snap.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap_or(0)
        };
        assert_eq!(counter("stream.chunks"), chunks.len() as u64);
        assert_eq!(counter("stream.queries"), queries.len() as u64);
        let overlap = snap
            .gauges
            .iter()
            .find(|(k, _)| k == "stream.overlap_ratio")
            .map(|(_, v)| *v)
            .expect("overlap gauge");
        assert!((0.0..=1.0).contains(&overlap), "overlap {overlap}");
        // The chunk latency histogram saw every chunk.
        let hist = snap
            .histograms
            .iter()
            .find(|(k, _)| k == "stream.chunk_us")
            .map(|(_, h)| *h)
            .expect("chunk histogram");
        assert_eq!(hist.count, chunks.len() as u64);
    }

    #[test]
    #[should_panic(expected = "chunk size must be at least 1")]
    fn zero_chunk_is_rejected() {
        let (_, tree, _) = setup();
        let _ = QueryStream::with_chunk_size(
            &tree,
            StreamKernel::Psb { k: 1 },
            DeviceConfig::k40(),
            KernelOptions::default(),
            0,
        );
    }
}
