//! Batch execution and occupancy: how the simulated device schedules a
//! 240-query batch, and how the node degree and k trade off (paper Figs. 6/8).
//!
//! ```text
//! cargo run --release --example batch_throughput
//! ```

use psb::prelude::*;

fn main() {
    let data =
        ClusteredSpec { clusters: 100, points_per_cluster: 1_000, dims: 64, sigma: 160.0, seed: 3 }
            .generate();
    let queries = sample_queries(&data, 240, 0.01, 4);
    let cfg = DeviceConfig::k40();
    println!(
        "batch: {} queries over {} points (64-d) on {} ({} SMs)",
        queries.len(),
        data.len(),
        cfg.name,
        cfg.sms
    );

    // Degree sweep (Fig. 6): the sweet spot sits where fewer levels balance
    // larger node fetches.
    println!("\n-- node degree sweep (PSB, k=32) --");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "degree", "warp eff", "MB/query", "resp ms", "makespan ms"
    );
    for degree in [32usize, 64, 128, 256, 512] {
        let tree = build(&data, degree, &BuildMethod::Hilbert);
        let r = psb_batch(&tree, &queries, 32, &cfg, &KernelOptions::default()).expect("batch");
        println!(
            "{:<8} {:>11.1}% {:>12.3} {:>12.4} {:>12.3}",
            degree,
            r.report.warp_efficiency * 100.0,
            r.report.avg_accessed_mb,
            r.report.avg_response_ms,
            r.report.makespan_ms
        );
    }

    // k sweep (Fig. 8): the shared-memory k-best list erodes occupancy.
    let tree = build(&data, 128, &BuildMethod::Hilbert);
    println!("\n-- k sweep (PSB, degree=128) --");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>14}",
        "k", "occupancy", "smem bytes", "resp ms", "hybrid resp ms"
    );
    for k in [1usize, 32, 256, 1024, 1920] {
        let all = psb_batch(&tree, &queries, k, &cfg, &KernelOptions::default()).expect("batch");
        let hybrid = psb_batch(
            &tree,
            &queries,
            k,
            &cfg,
            &KernelOptions {
                smem_policy: SharedMemPolicy::Hybrid { shared_slots: 64 },
                ..Default::default()
            },
        )
        .expect("batch");
        println!(
            "{:<8} {:>10} {:>12} {:>12.4} {:>14.4}",
            k,
            all.report.occupancy,
            all.report.merged.smem_peak_bytes,
            all.report.avg_response_ms,
            hybrid.report.avg_response_ms
        );
    }
    println!("\n(the hybrid column is the paper's §V-E future-work optimization)");
}
