//! Quickstart: build an SS-tree bottom-up, run one PSB query, inspect metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use psb::prelude::*;

fn main() {
    // 1. A clustered dataset: 50k points in 16 dimensions, 50 Gaussian blobs.
    let data =
        ClusteredSpec { clusters: 50, points_per_cluster: 1_000, dims: 16, sigma: 120.0, seed: 7 }
            .generate();
    println!(
        "dataset: {} points x {} dims ({} MB)",
        data.len(),
        data.dims(),
        data.bytes() / (1024 * 1024)
    );

    // 2. Bottom-up SS-tree with Hilbert-curve leaf packing (paper §IV-A),
    //    degree 128 as in the paper's experiments.
    let t0 = std::time::Instant::now();
    let tree = build(&data, 128, &BuildMethod::Hilbert);
    println!(
        "built SS-tree in {:.0} ms: {} nodes, {} leaves, height {}, leaf fill {:.0}%",
        t0.elapsed().as_secs_f64() * 1e3,
        tree.num_nodes(),
        tree.num_leaves(),
        tree.height(),
        tree.leaf_utilization() * 100.0
    );

    // 3. One PSB kNN query on the simulated K40.
    let cfg = DeviceConfig::k40();
    let opts = KernelOptions::default();
    let query = sample_queries(&data, 1, 0.01, 99);
    let (neighbors, stats) = psb_query(&tree, query.point(0), 8, &cfg, &opts);

    println!("\n8 nearest neighbors:");
    for n in &neighbors {
        println!("  point #{:<7} at distance {:.2}", n.id, n.dist);
    }

    println!("\nsimulated execution:");
    println!("  nodes visited     : {}", stats.nodes_visited);
    println!(
        "  global memory read: {:.3} MB (dataset is {:.1} MB)",
        stats.accessed_mb(),
        data.bytes() as f64 / (1024.0 * 1024.0)
    );
    println!("  warp efficiency   : {:.1}%", stats.warp_efficiency() * 100.0);
    println!(
        "  response time     : {:.4} ms (cost model)",
        stats.response_ms(&cfg, opts.threads_per_block.div_ceil(32))
    );

    // 4. Cross-check against the CPU oracle.
    let oracle = linear_knn(&data, query.point(0), 8);
    assert_eq!(neighbors.len(), oracle.len());
    for (a, b) in neighbors.iter().zip(&oracle) {
        assert!((a.dist - b.dist).abs() <= b.dist.max(1.0) * 1e-4);
    }
    println!("\nverified: results identical to an exact linear scan ✓");
}
