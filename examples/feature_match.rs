//! High-dimensional feature matching — the paper's introduction motivates
//! exact kNN for domains (e.g. scientific data, image features) where
//! approximate answers are unacceptable.
//!
//! 64-dimensional descriptor vectors are matched with k=2 and Lowe's ratio
//! test; the example contrasts the k-means-constructed SS-tree (the paper's
//! recommended builder for high dimensions) against brute force and reports
//! the accessed-bytes advantage.
//!
//! ```text
//! cargo run --release --example feature_match
//! ```

use psb::prelude::*;

fn main() {
    // "Descriptor" vectors: 64-d, clustered (real descriptor sets are highly
    // clustered — that is why indexes beat brute force at all).
    let dims = 64;
    let database =
        ClusteredSpec { clusters: 40, points_per_cluster: 2_000, dims, sigma: 200.0, seed: 5 }
            .generate();
    let probes = sample_queries(&database, 64, 0.02, 6);
    println!(
        "matching {} probe descriptors against {} database descriptors ({} dims)",
        probes.len(),
        database.len(),
        dims
    );

    // k-means bottom-up construction (paper §IV-B: the better builder in
    // high dimensions, Fig. 3).
    let k_leaf = psb::geom::kmeans::suggested_k(database.len());
    let tree = build(&database, 128, &BuildMethod::KMeans { k_leaf, seed: 11 });
    println!(
        "k-means SS-tree: {} leaves (k_leaf = {k_leaf}), height {}",
        tree.num_leaves(),
        tree.height()
    );

    let cfg = DeviceConfig::k40();
    let opts = KernelOptions::default();
    let knn = psb_batch(&tree, &probes, 2, &cfg, &opts).expect("batch");
    let brute = brute_batch(&database, &probes, 2, &cfg, &opts).expect("batch");

    // Lowe's ratio test on the exact 2-NN.
    let mut accepted = 0usize;
    for matches in &knn.neighbors {
        let (best, second) = (&matches[0], &matches[1]);
        if best.dist < 0.8 * second.dist {
            accepted += 1;
        }
    }
    println!("\nratio test: {accepted}/{} probes matched confidently", probes.len());

    println!("\nexact 2-NN cost per probe (simulated K40):");
    println!(
        "  PSB over k-means SS-tree : {:.3} MB read, {:.4} ms",
        knn.report.avg_accessed_mb, knn.report.avg_response_ms
    );
    println!(
        "  brute-force scan         : {:.3} MB read, {:.4} ms",
        brute.report.avg_accessed_mb, brute.report.avg_response_ms
    );
    println!(
        "  -> PSB reads {:.1}x fewer bytes",
        brute.report.avg_accessed_mb / knn.report.avg_accessed_mb
    );

    // Exactness spot check: identical distances to brute force.
    for (a, b) in knn.neighbors.iter().zip(&brute.neighbors) {
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x.dist - y.dist).abs() <= y.dist.max(1.0) * 1e-4);
        }
    }
    println!("\nexactness verified against brute force ✓");
}
