//! Geofencing with fixed-radius range queries.
//!
//! "All sensor reports within r degrees of this point" is the range-query
//! cousin of the paper's kNN workload (and the workload of the MPRS prior work
//! the paper cites). The same PSB machinery — leftmost descent under a bound,
//! linear sibling-leaf scanning — answers it with a *fixed* pruning distance.
//!
//! ```text
//! cargo run --release --example geofence
//! ```

use psb::prelude::*;

fn main() {
    let data =
        NoaaSpec { stations: 3_000, reports: 120_000, extra_dims: 0, seed: 0xFE0F }.generate();
    let tree = build(&data, 128, &BuildMethod::Hilbert);
    let cfg = DeviceConfig::k40();
    let opts = KernelOptions::default();

    // Fences of increasing radius around a busy region (degrees).
    let center = sample_queries(&data, 1, 0.0, 7);
    let q = center.point(0);
    println!("geofence center: ({:.3}, {:.3}) over {} reports\n", q[0], q[1], data.len());

    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>10}",
        "radius", "hits", "KB read", "resp ms", "leaves"
    );
    for radius in [0.05f32, 0.5, 2.0, 10.0] {
        let (hits, stats) = range_query_gpu(&tree, q, radius, &cfg, &opts);

        // Verify against the linear-scan oracle.
        let oracle = linear_range(&data, q, radius);
        assert_eq!(hits.len(), oracle.len(), "range query must be exact");

        println!(
            "{:>10} {:>10} {:>12.1} {:>12.4} {:>10}",
            radius,
            hits.len(),
            stats.global_bytes as f64 / 1024.0,
            stats.response_ms(&cfg, opts.threads_per_block.div_ceil(32)),
            stats.nodes_visited,
        );
    }

    // Batch version: fences around many centers at once.
    let centers = sample_queries(&data, 64, 0.01, 8);
    let batch = range_batch(&tree, &centers, 1.0, &cfg, &opts).expect("batch");
    let total_hits: usize = batch.neighbors.iter().map(|v| v.len()).sum();
    println!(
        "\nbatch: 64 fences of 1 degree -> {} total hits, {:.3} ms avg, {:.2} MB/query",
        total_hits, batch.report.avg_response_ms, batch.report.avg_accessed_mb
    );
    println!("range results verified exact against a linear scan ✓");
}
