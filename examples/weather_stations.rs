//! Spatio-temporal scenario: nearest weather-station reports (the paper's
//! §V-F NOAA workload).
//!
//! A stream of geotagged sensor reports is indexed; "find the k reports
//! nearest to a coordinate" drives all four engines the paper compares —
//! PSB and branch-and-bound on the simulated GPU, GPU brute force, and the
//! SR-tree on the real CPU.
//!
//! ```text
//! cargo run --release --example weather_stations
//! ```

use psb::prelude::*;

fn main() {
    let data =
        NoaaSpec { stations: 5_000, reports: 200_000, extra_dims: 0, seed: 0x2016 }.generate();
    println!("NOAA-like workload: {} reports from 5,000 stations (lon/lat degrees)", data.len());

    let queries = sample_queries(&data, 48, 0.005, 1);
    let k = 32;
    let cfg = DeviceConfig::k40();
    let opts = KernelOptions::default();

    // GPU-side indexes and kernels (simulated).
    let tree = build(&data, 128, &BuildMethod::Hilbert);
    let psb = psb_batch(&tree, &queries, k, &cfg, &opts).expect("batch");
    let bnb = bnb_batch(&tree, &queries, k, &cfg, &opts).expect("batch");
    let brute = brute_batch(&data, &queries, k, &cfg, &opts).expect("batch");

    // CPU SR-tree baseline (real wall-clock).
    let srtree = SrTree::build(&data, 8192);
    let t0 = std::time::Instant::now();
    let mut sr_pages = 0u64;
    for q in queries.iter() {
        let (_, st) = srtree.knn_with_points(&data, q, k);
        sr_pages += st.nodes_visited;
    }
    let sr_ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;

    println!(
        "\n{:<24} {:>14} {:>14} {:>10}",
        "engine", "response (ms)", "read MB/query", "warp eff"
    );
    let row = |name: &str, r: &QueryBatchResult| {
        println!(
            "{:<24} {:>14.4} {:>14.3} {:>9.1}%",
            name,
            r.report.avg_response_ms,
            r.report.avg_accessed_mb,
            r.report.warp_efficiency * 100.0
        );
    };
    row("SS-tree (PSB, GPU)", &psb);
    row("SS-tree (B&B, GPU)", &bnb);
    row("Brute force (GPU)", &brute);
    println!(
        "{:<24} {:>14.4} {:>14.3} {:>10}",
        "SR-tree (CPU, wall)",
        sr_ms,
        (sr_pages * 8192) as f64 / (1024.0 * 1024.0) / queries.len() as f64,
        "n/a"
    );

    // All engines must agree (exact search).
    for qi in 0..queries.len() {
        for other in [&bnb.neighbors[qi], &brute.neighbors[qi]] {
            for (a, b) in psb.neighbors[qi].iter().zip(other.iter()) {
                assert!((a.dist - b.dist).abs() <= a.dist.max(1e-3) * 1e-3);
            }
        }
    }
    println!("\nall engines returned identical neighbor distances ✓");

    // A concrete query for flavour.
    let q = queries.point(0);
    let nearest = &psb.neighbors[0][0];
    println!(
        "\nnearest report to ({:.3}, {:.3}): report #{} at {:.4} degrees",
        q[0], q[1], nearest.id, nearest.dist
    );
}
